"""Bar accumulation: quote streams → per-interval BAM/OHLC bars.

Two modes of use:

* :func:`accumulate_bam` / :func:`accumulate_ohlc` — vectorised batch
  accumulation of a whole day's quotes, used by the backtesting engines;
* :class:`StreamingBarAccumulator` — incremental, one-quote-at-a-time
  accumulation, used by the MarketMiner pipeline component, producing bars
  identical to the batch functions (tested property).

Empty intervals are forward-filled from the previous close (a stock that
does not quote still has a standing price); intervals before a symbol's
first quote are back-filled from that first quote so the output grid is
rectangular, matching how the paper treats infrequently trading stocks via
the BAM "approximation to the actual price level between trades".
"""

from __future__ import annotations

import numpy as np

from repro.taq.types import validate_quote_array
from repro.util.timeutil import TimeGrid

#: Per-interval bar: open/high/low/close of the BAM plus the quote count.
OHLC_DTYPE = np.dtype(
    [
        ("open", "f8"),
        ("high", "f8"),
        ("low", "f8"),
        ("close", "f8"),
        ("count", "i4"),
    ]
)


def _interval_indices(t: np.ndarray, grid: TimeGrid) -> np.ndarray:
    """Map quote timestamps to grid intervals; drop-out-of-session is an error."""
    if t.size and (t.min() < 0 or t.max() >= grid.smax * grid.delta_s):
        raise ValueError(
            "quote timestamps fall outside the complete intervals of the grid"
        )
    return (t // grid.delta_s).astype(np.int64)


def accumulate_bam(
    records: np.ndarray, grid: TimeGrid, n_symbols: int
) -> np.ndarray:
    """Last BAM per (interval, symbol), forward/back-filled; shape (smax, n).

    ``out[s, i]`` is the paper's ``P_i(s)``: the standing price of symbol
    ``i`` at the close of interval ``s``.
    """
    validate_quote_array(records, n_symbols=n_symbols)
    if records.size == 0:
        raise ValueError("cannot accumulate bars from an empty quote stream")
    s_idx = _interval_indices(records["t"], grid)
    bam = 0.5 * (records["bid"] + records["ask"])
    sym = records["symbol"]

    out = np.full((grid.smax, n_symbols), np.nan)
    # Last quote per (interval, symbol) wins.  Duplicate fancy-index
    # assignment order is undefined in NumPy, so pick the last occurrence
    # of each key explicitly (records are chronological).
    key = s_idx * np.int64(n_symbols) + sym
    _, rev_pos = np.unique(key[::-1], return_index=True)
    last_pos = key.size - 1 - rev_pos
    out[s_idx[last_pos], sym[last_pos]] = bam[last_pos]

    for i in range(n_symbols):
        col = out[:, i]
        valid = np.isfinite(col)
        if not valid.any():
            raise ValueError(f"symbol index {i} has no quotes in the stream")
        # Forward fill.
        idx = np.where(valid, np.arange(grid.smax), 0)
        np.maximum.accumulate(idx, out=idx)
        col[:] = col[idx]
        # Back fill the leading gap.
        first = np.argmax(valid)
        col[:first] = col[first]
    return out


def accumulate_ohlc(
    records: np.ndarray, grid: TimeGrid, n_symbols: int
) -> np.ndarray:
    """Full OHLC bars of the BAM; shape (smax, n) with :data:`OHLC_DTYPE`.

    Empty intervals carry the forward-filled close in all four price fields
    and ``count == 0``.
    """
    validate_quote_array(records, n_symbols=n_symbols)
    if records.size == 0:
        raise ValueError("cannot accumulate bars from an empty quote stream")
    s_idx = _interval_indices(records["t"], grid)
    bam = 0.5 * (records["bid"] + records["ask"])
    sym = records["symbol"]

    out = np.zeros((grid.smax, n_symbols), dtype=OHLC_DTYPE)
    out["high"][:] = -np.inf
    out["low"][:] = np.inf
    out["open"][:] = np.nan
    out["close"][:] = np.nan

    np.maximum.at(out["high"], (s_idx, sym), bam)
    np.minimum.at(out["low"], (s_idx, sym), bam)
    np.add.at(out["count"], (s_idx, sym), 1)
    # First/last quote per (interval, symbol) give open/close.  Duplicate
    # fancy-index assignment order is undefined in NumPy, so resolve the
    # occurrences explicitly: records are chronological, so the first
    # occurrence of each key is the open and the last is the close.
    key = s_idx * np.int64(n_symbols) + sym
    _, first_pos = np.unique(key, return_index=True)
    out["open"][s_idx[first_pos], sym[first_pos]] = bam[first_pos]
    rev_key = key[::-1]
    _, rev_pos = np.unique(rev_key, return_index=True)
    last_pos = key.size - 1 - rev_pos
    out["close"][s_idx[last_pos], sym[last_pos]] = bam[last_pos]

    closes = accumulate_bam(records, grid, n_symbols)
    empty = out["count"] == 0
    for f in ("open", "high", "low", "close"):
        out[f][empty] = closes[empty]
    return out


class StreamingBarAccumulator:
    """Incremental bar builder for the MarketMiner pipeline.

    Feed quotes with :meth:`add_quote`; when the stream passes an interval
    boundary, call :meth:`close_through` to flush every completed interval.
    Produces exactly the rows :func:`accumulate_ohlc` would.
    """

    def __init__(self, grid: TimeGrid, n_symbols: int):
        if n_symbols <= 0:
            raise ValueError(f"n_symbols must be positive, got {n_symbols}")
        self.grid = grid
        self.n_symbols = n_symbols
        self._current = 0  # next interval to close
        self._last_close = np.full(n_symbols, np.nan)
        self._reset_working()

    def _reset_working(self) -> None:
        n = self.n_symbols
        self._open = np.full(n, np.nan)
        self._high = np.full(n, -np.inf)
        self._low = np.full(n, np.inf)
        self._close = np.full(n, np.nan)
        self._count = np.zeros(n, dtype=np.int32)

    @property
    def next_interval(self) -> int:
        """Index of the next interval that will be closed."""
        return self._current

    def add_quote(self, t: float, symbol: int, bid: float, ask: float) -> None:
        """Feed one quote; it must belong to an interval not yet closed."""
        if not 0 <= symbol < self.n_symbols:
            raise ValueError(f"symbol {symbol} outside [0, {self.n_symbols})")
        s = self.grid.interval_of(t)
        if s < self._current:
            raise ValueError(
                f"quote at t={t} belongs to interval {s}, already closed "
                f"(next open interval is {self._current})"
            )
        if s > self._current:
            raise ValueError(
                f"quote at t={t} belongs to future interval {s}; call "
                f"close_through({s - 1}) first"
            )
        bam = 0.5 * (bid + ask)
        if self._count[symbol] == 0:
            self._open[symbol] = bam
        self._high[symbol] = max(self._high[symbol], bam)
        self._low[symbol] = min(self._low[symbol], bam)
        self._close[symbol] = bam
        self._count[symbol] += 1

    def close_through(self, s: int) -> np.ndarray:
        """Close intervals ``current .. s``; return their bar rows.

        Returns shape ``(s - current + 1, n_symbols)`` with
        :data:`OHLC_DTYPE`.  Symbols with no quote yet (no standing price)
        produce NaN bars until their first quote arrives, mirroring the
        back-fill the batch accumulator performs once the whole day is
        known.
        """
        if s < self._current:
            raise ValueError(f"interval {s} already closed")
        self.grid._check_index(s)
        rows = []
        while self._current <= s:
            row = np.zeros(self.n_symbols, dtype=OHLC_DTYPE)
            has = self._count > 0
            row["open"] = np.where(has, self._open, self._last_close)
            row["high"] = np.where(has, self._high, self._last_close)
            row["low"] = np.where(has, self._low, self._last_close)
            row["close"] = np.where(has, self._close, self._last_close)
            row["count"] = self._count
            self._last_close = row["close"].copy()
            rows.append(row)
            self._current += 1
            self._reset_working()
        return np.stack(rows)
