"""Return computation over bar grids.

The paper's correlation inputs are vectors of the last ``M`` log-returns,
``x_i = log(P_i(s) / P_i(s - 1))``; the over/under-performer decision uses
the ``W``-period simple return.  All functions are vectorised over the
whole (intervals × symbols) grid.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.util.validation import check_positive_int


def log_returns(prices: np.ndarray) -> np.ndarray:
    """1-period log-returns along axis 0; shape ``(T-1, ...)``.

    ``out[s - 1] = log(P(s) / P(s - 1))`` so ``out[k]`` is the return *into*
    interval ``k + 1``.
    """
    prices = np.asarray(prices, dtype=float)
    if prices.shape[0] < 2:
        raise ValueError("need at least two price rows for returns")
    if np.any(prices <= 0) or not np.all(np.isfinite(prices)):
        raise ValueError("prices must be positive and finite")
    return np.diff(np.log(prices), axis=0)


def sliding_windows(x: np.ndarray, m: int) -> np.ndarray:
    """Rolling windows of length ``m`` along axis 0, as a zero-copy view.

    For input shape ``(T, ...)`` returns shape ``(T - m + 1, ..., m)``:
    ``out[k]`` contains rows ``k .. k + m - 1``.  Callers must not write
    through the view.
    """
    check_positive_int(m, "m")
    x = np.asarray(x)
    if x.shape[0] < m:
        raise ValueError(f"need at least {m} rows, got {x.shape[0]}")
    return sliding_window_view(x, m, axis=0)


def w_period_returns(prices: np.ndarray, w: int) -> np.ndarray:
    """Simple ``W``-period returns ``P(s)/P(s-W) - 1`` along axis 0.

    Output row ``k`` corresponds to price row ``k + w``; shape
    ``(T - w, ...)``.
    """
    check_positive_int(w, "w")
    prices = np.asarray(prices, dtype=float)
    if prices.shape[0] <= w:
        raise ValueError(f"need more than {w} price rows, got {prices.shape[0]}")
    if np.any(prices <= 0) or not np.all(np.isfinite(prices)):
        raise ValueError("prices must be positive and finite")
    return prices[w:] / prices[:-w] - 1.0
