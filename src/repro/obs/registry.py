"""Dependency-free metrics primitives: counters, gauges, histograms, timers.

The registry is designed around one invariant: **disabled observability
costs one attribute check**.  A disabled :class:`MetricsRegistry` hands out
a shared :data:`NULL_METRIC` whose mutators are no-ops, so instrumented
code is written unconditionally (``registry.counter("x").inc()``) and pays
nothing when telemetry is off.

All state is plain Python (ints, floats, lists, dicts), so registries are
picklable across the process backend and serialise losslessly through
:meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.merge_dict` — the
interchange used to merge per-rank registries at finalize.

Histogram quantiles use linear interpolation on the sorted sample, the
same estimator as ``numpy.quantile``'s default method, so summaries are
directly comparable to offline analysis.
"""

from __future__ import annotations

import math
import sys
import time
from typing import Any, Iterable


def payload_nbytes(obj: Any, _depth: int = 0) -> int:
    """Approximate the wire size of a message payload in bytes.

    Numpy arrays report ``nbytes`` exactly; builtin containers are summed
    shallowly (up to four levels, enough for every envelope this library
    sends); everything else falls back to ``sys.getsizeof``.
    """
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if _depth < 4:
        if isinstance(obj, (tuple, list, set, frozenset)):
            return sum(payload_nbytes(x, _depth + 1) for x in obj)
        if isinstance(obj, dict):
            return sum(
                payload_nbytes(k, _depth + 1) + payload_nbytes(v, _depth + 1)
                for k, v in obj.items()
            )
    return sys.getsizeof(obj)


class Counter:
    """Monotonically increasing count (messages, bytes, events)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def to_dict(self) -> int | float:
        return self.value


class Gauge:
    """Point-in-time level; remembers the last and the maximum value set."""

    __slots__ = ("name", "last", "max", "n_sets")

    def __init__(self, name: str):
        self.name = name
        self.last = 0.0
        self.max = -math.inf
        self.n_sets = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        if value > self.max:
            self.max = value
        self.n_sets += 1

    def to_dict(self) -> dict:
        return {"last": self.last, "max": self.max, "n_sets": self.n_sets}


class Histogram:
    """Sample distribution with numpy-compatible quantiles.

    Raw observations are retained (the workloads this library instruments
    observe at most tens of thousands of values per rank), which makes
    merging across ranks exact: concatenate the samples.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    # -- statistics --------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else math.nan

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile, identical to ``numpy.quantile``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            return math.nan
        data = sorted(self.values)
        pos = (len(data) - 1) * q
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi:
            return data[lo]
        return data[lo] + (data[hi] - data[lo]) * (pos - lo)

    def summary(self) -> dict:
        """count/sum/min/max/mean plus the p50/p95/p99 operational trio."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> list[float]:
        return list(self.values)


def registry_snapshot(
    registry: "MetricsRegistry",
    quantiles: bool = False,
    retries: int = 0,
) -> dict | None:
    """Race-tolerant point-in-time snapshot of a live registry.

    Both consumers of live telemetry — the
    :class:`~repro.obs.live.sampler.TimeSeriesSampler` tick and the
    serving layer's ``/telemetry`` route — need the same thing: the
    current value of every counter and gauge plus per-histogram
    ``count``/``sum`` (and optionally the p50/p95/p99 trio with
    ``quantiles=True``), read while the instrumented rank keeps mutating
    the registry.  Registry mutation is only ever metric *creation* plus
    scalar updates, so one ``list(dict.items())`` copy per family under
    try/except is enough: an attempt that races a concurrent insert is
    retried up to ``retries`` times; if every attempt races, ``None`` is
    returned and the caller decides (the sampler skips the tick, the
    route retries on its next request).

    With ``quantiles=True`` histogram statistics are computed over a
    shallow copy of the sample list, so a concurrent ``observe`` can
    never shift data under the quantile scan.  The lean default path
    reads ``count``/``sum`` without copying — histogram sample lists
    only ever grow by append, and the sampler ticks at 20 Hz, so the
    per-tick copy would be the single largest cost of live sampling.
    """
    for _ in range(retries + 1):
        try:
            counters = list(registry.counters.items())
            gauges = list(registry.gauges.items())
            hists = list(registry.histograms.items())
        except RuntimeError:  # dict mutated during iteration; retry/give up
            continue
        histograms: dict[str, dict] = {}
        for name, h in hists:
            values = list(h.values) if quantiles else h.values
            entry: dict[str, float] = {
                "count": len(values),
                "sum": float(sum(values)),
            }
            if quantiles and values:
                copy = Histogram(name)
                copy.values = values
                entry["p50"] = copy.quantile(0.50)
                entry["p95"] = copy.quantile(0.95)
                entry["p99"] = copy.quantile(0.99)
            histograms[name] = entry
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {
                name: {"last": g.last, "max": g.max, "n_sets": g.n_sets}
                for name, g in gauges
            },
            "histograms": histograms,
        }
    return None


class _NullMetric:
    """Shared no-op stand-in handed out by disabled registries."""

    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullMetric":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: The shared no-op metric/context-manager (also usable as a null timer).
NULL_METRIC = _NullMetric()


class _Timer:
    """Context manager recording elapsed ``perf_counter`` seconds."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """A namespace of counters, gauges and histograms for one rank.

    With ``enabled=False`` every accessor returns :data:`NULL_METRIC` and
    the registry stays permanently empty — the no-op fast path.
    """

    __slots__ = ("enabled", "counters", "gauges", "histograms")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- accessors (create on first use) -----------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return NULL_METRIC  # type: ignore[return-value]
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def timer(self, name: str) -> _Timer | _NullMetric:
        """Context manager timing a block into histogram ``name``."""
        if not self.enabled:
            return NULL_METRIC
        return _Timer(self.histogram(name))

    # -- serialisation & merging -------------------------------------------

    def to_dict(self) -> dict:
        """Lossless interchange form (picklable, JSON-serialisable)."""
        return {
            "counters": {n: c.to_dict() for n, c in sorted(self.counters.items())},
            "gauges": {n: g.to_dict() for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
        }

    def merge_dict(self, d: dict) -> None:
        """Fold another registry's :meth:`to_dict` into this one.

        Counters add, histogram samples concatenate (exact merge), gauges
        keep the maximum and the latest-set value and add set counts.
        """
        for name, value in d.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, g in d.get("gauges", {}).items():
            gauge = self.gauge(name)
            if isinstance(gauge, Gauge):
                gauge.last = g["last"]
                if g["max"] > gauge.max:
                    gauge.max = g["max"]
                gauge.n_sets += g.get("n_sets", 0)
        for name, values in d.get("histograms", {}).items():
            hist = self.histogram(name)
            if isinstance(hist, Histogram):
                hist.values.extend(values)

    @classmethod
    def merged(cls, dicts: Iterable[dict]) -> "MetricsRegistry":
        """A fresh registry holding the fold of several interchange dicts."""
        reg = cls(enabled=True)
        for d in dicts:
            reg.merge_dict(d)
        return reg

    def summary(self) -> dict:
        """Human/report form: histograms collapsed to quantile summaries."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.to_dict() for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }
