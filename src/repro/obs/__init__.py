"""repro.obs — metrics, tracing and pipeline telemetry.

A dependency-free observability layer threaded through the three systems
the paper benchmarks: the MPI substrate (per-rank message/byte counters,
queue-depth gauges, collective latencies), the MarketMiner runtime
(per-component handler latency histograms, emit counts, end-of-stream
timing) and the backtest engines (per-pair-day cost histograms and
per-approach span trees).

Design rules:

* **cheap when disabled** — a disabled :class:`Obs` hands out shared
  no-op metrics; instrumented hot paths pay one attribute check;
* **one registry per rank** — SPMD code never shares mutable telemetry
  state across ranks, so the thread backend stays deterministic;
* **mergeable** — registries and traces serialise to plain dicts
  (:meth:`Obs.to_dict`) that are gathered over the existing collective
  path and folded into one report (:func:`build_report`).

Typical SPMD wiring::

    obs = Obs(enabled=True)
    attach_to_comm(comm, obs)                  # MPI-substrate telemetry
    with obs.trace.span("work"):
        ...                                     # app-level spans/metrics
    dicts = comm.gather(obs.to_dict(), root=0)
    if comm.rank == 0:
        report = build_report(dict(enumerate(dicts)))
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    payload_nbytes,
    registry_snapshot,
)
from repro.obs.report import (
    SCHEMA,
    build_report,
    load_report,
    render_text,
    write_json,
)
from repro.obs.trace import Span, SpanTracer, render_flame


class Obs:
    """One rank's observability handle: a metrics registry plus a tracer.

    Two optional live-plane attachments ride along: ``flight`` holds the
    rank's :class:`~repro.obs.live.flight.FlightRecorder` (substrate and
    runtime hooks record into it when present) and ``profile`` holds the
    interchange dict a :class:`~repro.obs.live.profiler.SamplingProfiler`
    folded in on stop.  Both default to None and cost instrumented code
    one attribute check when absent.
    """

    __slots__ = ("metrics", "trace", "flight", "profile", "_ranks")

    def __init__(self, enabled: bool = True):
        self.metrics = MetricsRegistry(enabled=enabled)
        self.trace = SpanTracer(enabled=enabled)
        self.flight = None
        self.profile: dict | None = None
        #: Interchange dicts absorbed from other ranks (driver-side only).
        self._ranks: dict[Any, dict] = {}

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled

    def to_dict(self) -> dict:
        """This rank's telemetry in interchange form (picklable)."""
        d = {"metrics": self.metrics.to_dict(), "spans": self.trace.to_list()}
        if self.profile is not None:
            d["profile"] = self.profile
        return d

    def absorb_rank(self, rank: Any, payload: dict) -> None:
        """Store (or fold into) another rank's interchange dict."""
        existing = self._ranks.get(rank)
        if existing is None:
            self._ranks[rank] = payload
        else:
            reg = MetricsRegistry.merged(
                [existing.get("metrics", {}), payload.get("metrics", {})]
            )
            existing["metrics"] = reg.to_dict()
            existing["spans"] = list(existing.get("spans", [])) + list(
                payload.get("spans", [])
            )
            if "profile" in existing or "profile" in payload:
                from repro.obs.live.profiler import merge_profiles

                existing["profile"] = merge_profiles(
                    [existing.get("profile"), payload.get("profile")]
                )

    def report(self) -> dict:
        """Build the full v1 report from local + absorbed telemetry."""
        per_rank = dict(self._ranks)
        local = self.to_dict()
        local_empty = not any(local["metrics"].values()) and not local["spans"]
        if not local_empty or not per_rank:
            per_rank["driver"] = local
        return build_report(per_rank)


#: Shared disabled handle: the default for every ``obs`` parameter.
NULL_OBS = Obs(enabled=False)


def resolve(obs: "Obs | None") -> Obs:
    """Normalise an optional ``obs`` argument to a usable handle."""
    return obs if obs is not None else NULL_OBS


def attach_to_comm(comm: Any, obs: Obs) -> bool:
    """Attach ``obs`` to a communicator that supports instrumentation.

    Returns True when the communicator accepted the handle (MailboxComm
    does); False for foreign communicators, which simply stay dark.
    """
    attach = getattr(comm, "attach_obs", None)
    if attach is None:
        return False
    attach(obs)
    return True


def comm_obs(comm: Any) -> Obs | None:
    """The Obs attached to a communicator, or None."""
    obs = getattr(comm, "obs", None)
    return obs if isinstance(obs, Obs) else None


def ensure_obs(comm: Any, enabled: bool) -> Obs:
    """Resolve the observability handle for an SPMD run.

    Reuses a handle already attached to the communicator (e.g. by a
    backend constructed with ``obs_enabled=True``); otherwise attaches a
    fresh enabled handle when ``enabled`` is set, and falls back to the
    shared disabled handle.
    """
    existing = comm_obs(comm)
    if existing is not None:
        return existing
    if enabled:
        obs = Obs(enabled=True)
        attach_to_comm(comm, obs)
        return obs
    return NULL_OBS


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_OBS",
    "Obs",
    "SCHEMA",
    "Span",
    "SpanTracer",
    "attach_to_comm",
    "build_report",
    "comm_obs",
    "ensure_obs",
    "load_report",
    "payload_nbytes",
    "registry_snapshot",
    "render_flame",
    "render_text",
    "resolve",
    "write_json",
]
