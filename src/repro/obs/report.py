"""Assemble, serialise and render observability reports.

The report is the JSON interchange produced by ``repro ... --obs-json``
and consumed by ``repro stats``.  Schema (``repro.obs/v1``)::

    {
      "schema":  "repro.obs/v1",
      "ranks":   {"<rank>": {"counters": {...}, "gauges": {...},
                             "histograms": {name: {count, sum, min, max,
                                                   mean, p50, p95, p99}}}},
      "metrics": {...same shape, merged across ranks...},
      "spans":   [{"id", "name", "parent", "rank", "start",
                   "wall", "cpu", "tags"}, ...],
      "profile": {...optional: merged sampling profile (repro.profile/v1),
                  present only when a run was profiled...}
    }

``ranks`` holds each rank's registry summarised independently (the
per-rank view the paper's communication profile needs); ``metrics`` is
the exact cross-rank merge (counters summed, histogram samples pooled);
``spans`` is the merged span forest, one session tree per rank.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SpanTracer, render_flame

SCHEMA = "repro.obs/v1"


def build_report(per_rank: dict) -> dict:
    """Build the v1 report from ``{rank: Obs.to_dict()}`` interchange dicts.

    When any rank carries a sampling profile, the cross-rank merge lands
    under the optional ``profile`` key (schema stays v1: the key is
    additive and absent for unprofiled runs).
    """
    ranks: dict[str, dict] = {}
    merged = MetricsRegistry(enabled=True)
    spans_by_rank: dict = {}
    profiles: list[dict] = []
    for rank in sorted(per_rank, key=str):
        payload = per_rank[rank]
        metrics_dict = payload.get("metrics", {})
        ranks[str(rank)] = MetricsRegistry.merged([metrics_dict]).summary()
        merged.merge_dict(metrics_dict)
        spans_by_rank[rank] = payload.get("spans", [])
        if payload.get("profile"):
            profiles.append(payload["profile"])
    report = {
        "schema": SCHEMA,
        "ranks": ranks,
        "metrics": merged.summary(),
        "spans": SpanTracer.merge_list(spans_by_rank),
    }
    if profiles:
        from repro.obs.live.profiler import merge_profiles

        report["profile"] = merge_profiles(profiles)
    return report


def write_json(report: dict, path: str | Path) -> Path:
    """Write a report as JSON; returns the path written.

    Parent directories are created: the report is produced at the end of
    a potentially long run and must not be lost to a missing directory.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True, default=str) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    """Read a report written by :func:`write_json`.

    Raises :class:`ValueError` (with the offending path and reason) on
    non-JSON input, a foreign/missing schema tag, or a structurally
    invalid report — ``repro stats`` must fail loudly rather than render
    empty tables from a payload it does not actually understand.
    """
    try:
        report = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(report, dict):
        raise ValueError(
            f"{path}: not a repro.obs report (top level is "
            f"{type(report).__name__}, expected an object)"
        )
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: not a repro.obs report (schema {schema!r}, "
            f"expected {SCHEMA!r})"
        )
    for key, kind in (("ranks", dict), ("metrics", dict), ("spans", list)):
        if key not in report:
            raise ValueError(
                f"{path}: invalid {SCHEMA} report: missing {key!r}"
            )
        if not isinstance(report[key], kind):
            raise ValueError(
                f"{path}: invalid {SCHEMA} report: {key!r} is "
                f"{type(report[key]).__name__}, expected {kind.__name__}"
            )
    for family in ("counters", "gauges", "histograms"):
        if not isinstance(report["metrics"].get(family, {}), dict):
            raise ValueError(
                f"{path}: invalid {SCHEMA} report: metrics.{family} is not "
                f"a mapping"
            )
    return report


def _format_value(v: float) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def render_text(report: dict) -> str:
    """Render a report as the plain-text summary ``repro stats`` prints."""
    lines: list[str] = [f"observability report ({report.get('schema', '?')})"]

    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("\ncounters (merged across ranks):")
        width = max(len(n) for n in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {_format_value(value)}")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("\ngauges:")
        width = max(len(n) for n in gauges)
        for name, g in gauges.items():
            lines.append(
                f"  {name:<{width}}  last {_format_value(g['last'])}  "
                f"max {_format_value(g['max'])}"
            )

    hists = metrics.get("histograms", {})
    if hists:
        lines.append("\nhistograms (pooled):")
        width = max(len(n) for n in hists)
        for name, h in hists.items():
            if h.get("count", 0) == 0:
                lines.append(f"  {name:<{width}}  (empty)")
                continue
            lines.append(
                f"  {name:<{width}}  n={h['count']:<6} "
                f"mean {h['mean']:.6g}  p50 {h['p50']:.6g}  "
                f"p95 {h['p95']:.6g}  p99 {h['p99']:.6g}  "
                f"max {h['max']:.6g}"
            )

    ranks = report.get("ranks", {})
    if ranks:
        lines.append("\nper-rank message counters:")
        for rank in sorted(ranks, key=str):
            c = ranks[rank].get("counters", {})
            sent = c.get("mpi.sent.messages", 0)
            recvd = c.get("mpi.recv.messages", 0)
            sent_b = c.get("mpi.sent.bytes", 0)
            recv_b = c.get("mpi.recv.bytes", 0)
            lines.append(
                f"  rank {rank}: sent {sent} msg / {_format_value(sent_b)} B, "
                f"recv {recvd} msg / {_format_value(recv_b)} B"
            )

    spans = report.get("spans", [])
    if spans:
        lines.append("\nspan tree:")
        lines.append(render_flame(spans))

    profile = report.get("profile")
    if profile:
        from repro.obs.live.profiler import render_flame_table

        lines.append("")
        lines.append(render_flame_table(profile))
    return "\n".join(lines)
