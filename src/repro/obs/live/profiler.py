"""Dependency-free sampling profiler attributing stacks to obs spans.

A :class:`SamplingProfiler` runs a daemon thread that periodically grabs
the target thread's current frame via ``sys._current_frames()`` (the
thread-based variant works off the main thread, where ``signal``-based
samplers cannot), walks the ``f_back`` chain into a tuple of
``module:qualname`` frames, and reads the innermost open span off the
rank's :class:`~repro.obs.trace.SpanTracer` so every sample is bucketed
under the obs span that was active when it landed.

Output is a plain-dict *profile*: per ``(span, stack)`` sample counts
converted to seconds (``count * interval``).  Per-rank profiles merge by
summation (:func:`merge_profiles`), and :func:`render_flame_table` /
:func:`span_totals` produce the cross-rank flame table the scaling
benchmark prints — the "where do pair-day seconds go" signal for the
vectorization work.

Sampling error is the usual Poisson bound: at the default 5 ms interval
a 1-second region collects ~200 samples, so attribution is good to a few
percent — enough to rank hot paths, which is all a flame table is for.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter

#: Default sampling interval in seconds (5 ms, ~200 Hz).
DEFAULT_INTERVAL = 0.005

#: Frames deeper than this are truncated (keeps stack keys bounded).
DEFAULT_MAX_STACK = 40

#: Span bucket used for samples landing outside any open span.
NO_SPAN = "(no span)"

#: Profile dict schema tag.
PROFILE_SCHEMA = "repro.profile/v1"


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_qualname}"


class SamplingProfiler:
    """Samples one thread's stack, attributing time to the active span.

    Usable as a context manager::

        with SamplingProfiler(obs) as prof:
            run_backtest(...)
        table = render_flame_table(prof.to_dict())

    On :meth:`stop`, the profile is also folded into ``obs.profile`` when
    the obs handle carries that slot, so engine code only has to wrap its
    run — reporting picks the profile up from the obs dict.
    """

    __slots__ = (
        "obs",
        "interval",
        "max_stack",
        "samples",
        "n_samples",
        "wall",
        "_target_ident",
        "_thread",
        "_stop",
        "_t0",
    )

    def __init__(
        self,
        obs=None,
        interval: float = DEFAULT_INTERVAL,
        max_stack: int = DEFAULT_MAX_STACK,
    ):
        self.obs = obs
        self.interval = interval
        self.max_stack = max_stack
        self.samples: _TallyCounter = _TallyCounter()
        self.n_samples = 0
        self.wall = 0.0
        self._target_ident: int | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._t0 = 0.0

    # -- span attribution ---------------------------------------------------

    def _active_span(self) -> str:
        """Name of the target thread's innermost open span (racy read).

        The tracer's stack is mutated by the target thread while we read
        it; a torn read at worst misattributes one sample, so failures
        degrade to :data:`NO_SPAN` rather than propagate.
        """
        obs = self.obs
        if obs is None:
            return NO_SPAN
        try:
            trace = obs.trace
            stack = trace._stack
            if not stack:
                return NO_SPAN
            return trace.spans[stack[-1]].name
        except (AttributeError, IndexError):
            return NO_SPAN

    def _take_sample(self) -> None:
        frame = sys._current_frames().get(self._target_ident)
        if frame is None:
            return
        stack = []
        depth = 0
        while frame is not None and depth < self.max_stack:
            stack.append(_frame_label(frame))
            frame = frame.f_back
            depth += 1
        stack.reverse()  # outermost first, flame-graph order
        self.samples[(self._active_span(), tuple(stack))] += 1
        self.n_samples += 1

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin sampling the *calling* thread from a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._t0 = time.perf_counter()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self._take_sample()

        self._thread = threading.Thread(
            target=loop, name="obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> dict:
        """Stop sampling; fold the profile into ``obs.profile`` and return it."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        self.wall += time.perf_counter() - self._t0
        profile = self.to_dict()
        obs = self.obs
        if obs is not None and getattr(obs, "profile", None) is not None:
            obs.profile = merge_profiles([obs.profile, profile])
        elif obs is not None and hasattr(obs, "profile"):
            obs.profile = profile
        return profile

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Interchange profile: JSON-ready, merge-ready.

        ``samples`` maps span name -> leaf frame -> seconds; ``stacks``
        keeps the full stack detail (joined with ``;`` flamegraph-style)
        for tools that want depth.
        """
        spans: dict[str, dict[str, float]] = {}
        stacks: dict[str, float] = {}
        for (span, stack), count in self.samples.items():
            seconds = count * self.interval
            leaf = stack[-1] if stack else "?"
            spans.setdefault(span, {})
            spans[span][leaf] = spans[span].get(leaf, 0.0) + seconds
            key = span + ";" + ";".join(stack)
            stacks[key] = stacks.get(key, 0.0) + seconds
        return {
            "schema": PROFILE_SCHEMA,
            "interval": self.interval,
            "n_samples": self.n_samples,
            "wall": self.wall,
            "spans": spans,
            "stacks": stacks,
        }


def merge_profiles(profiles) -> dict:
    """Sum several interchange profiles (cross-rank or cross-run)."""
    merged = {
        "schema": PROFILE_SCHEMA,
        "interval": 0.0,
        "n_samples": 0,
        "wall": 0.0,
        "spans": {},
        "stacks": {},
    }
    for p in profiles:
        if not p:
            continue
        merged["interval"] = max(merged["interval"], p.get("interval", 0.0))
        merged["n_samples"] += p.get("n_samples", 0)
        merged["wall"] += p.get("wall", 0.0)
        for span, leaves in p.get("spans", {}).items():
            out = merged["spans"].setdefault(span, {})
            for leaf, seconds in leaves.items():
                out[leaf] = out.get(leaf, 0.0) + seconds
        for key, seconds in p.get("stacks", {}).items():
            merged["stacks"][key] = merged["stacks"].get(key, 0.0) + seconds
    return merged


def span_totals(profile: dict) -> dict[str, float]:
    """Seconds attributed to each span, largest first."""
    totals = {
        span: sum(leaves.values())
        for span, leaves in profile.get("spans", {}).items()
    }
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]))


def attributed_fraction(profile: dict) -> float:
    """Fraction of sampled time landing inside a named span."""
    totals = span_totals(profile)
    total = sum(totals.values())
    if total <= 0.0:
        return 0.0
    return 1.0 - totals.get(NO_SPAN, 0.0) / total


def render_flame_table(profile: dict, top: int = 20) -> str:
    """Text flame table: per-span totals with their hottest leaf frames."""
    totals = span_totals(profile)
    total = sum(totals.values()) or 1.0
    lines = [
        f"sampling profile: {profile.get('n_samples', 0)} samples "
        f"@ {profile.get('interval', 0.0) * 1000:.1f} ms "
        f"({profile.get('wall', 0.0):.2f}s wall)",
        f"{'span':<28} {'seconds':>9} {'share':>7}  hottest frames",
    ]
    for span, seconds in totals.items():
        leaves = sorted(
            profile["spans"][span].items(), key=lambda kv: -kv[1]
        )[:3]
        hot = ", ".join(f"{leaf} ({s:.2f}s)" for leaf, s in leaves)
        lines.append(
            f"{span:<28} {seconds:>8.2f}s {seconds / total:>6.1%}  {hot}"
        )
        if len(lines) - 2 >= top:
            break
    return "\n".join(lines)
