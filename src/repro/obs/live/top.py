"""`repro top`: a live terminal view over per-rank samplers.

The :class:`TelemetryHub` is the driver-side aggregation point: each SPMD
rank registers its ``Obs`` handle as it starts (via the runner's
``obs_hook``), the hub wraps it in a
:class:`~repro.obs.live.sampler.TimeSeriesSampler`, and one background
ticker samples every registered rank at a shared timestamp.
:func:`render_top` turns the hub's current state into the frame the CLI
repaints: a per-rank MPI table (messages, bytes, rates, queue depth), a
per-component table (emits, handler duty cycle) and any health events.

Everything here reads only the sampler query API — the hub is the first
consumer of the contract the ROADMAP's serving layer will bind to.
"""

from __future__ import annotations

import threading
import time

from repro.obs.live.health import HealthMonitor
from repro.obs.live.sampler import TimeSeriesSampler, sample_all


class TelemetryHub:
    """Aggregates per-rank samplers behind one register/sample surface."""

    __slots__ = (
        "capacity",
        "rules",
        "samplers",
        "started_at",
        "n_ticks",
        "_lock",
        "_thread",
        "_stop",
    )

    def __init__(self, capacity: int = 600, rules=()):
        self.capacity = capacity
        self.rules = tuple(rules)
        self.samplers: dict = {}
        self.started_at = time.monotonic()
        self.n_ticks = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def register(self, rank, obs) -> TimeSeriesSampler:
        """Adopt one rank's obs handle; thread-safe, idempotent per rank."""
        with self._lock:
            sampler = self.samplers.get(rank)
            if sampler is None:
                health = HealthMonitor(self.rules) if self.rules else None
                sampler = TimeSeriesSampler(
                    obs, capacity=self.capacity, health=health
                )
                self.samplers[rank] = sampler
            return sampler

    def sample(self) -> None:
        """Tick every registered sampler at one shared timestamp."""
        with self._lock:
            samplers = list(self.samplers.values())
        sample_all(samplers)
        self.n_ticks += 1

    def start(self, interval: float) -> None:
        """Drive :meth:`sample` from a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("hub already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.sample()

        self._thread = threading.Thread(
            target=loop, name="obs-hub", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    # -- aggregate views ----------------------------------------------------

    def health_events(self) -> list:
        with self._lock:
            samplers = list(self.samplers.items())
        events = []
        for rank, sampler in samplers:
            events.extend((rank, ev) for ev in sampler.health_events.events())
        return events


def _fmt_count(x: float) -> str:
    if x >= 1e6:
        return f"{x / 1e6:.1f}M"
    if x >= 1e4:
        return f"{x / 1e3:.1f}k"
    return f"{x:,.0f}"


def _component_names(sampler: TimeSeriesSampler) -> list[str]:
    names = set()
    for series in sampler.names():
        if series.startswith("component."):
            rest = series[len("component."):]
            names.add(rest.split(".", 1)[0])
    return sorted(names)


def render_top(
    hub: TelemetryHub, window: float = 5.0, supervisor=None
) -> str:
    """One frame of the live view from the hub's current rings.

    ``supervisor`` is an optional
    :class:`~repro.marketminer.session.SessionControl` attached to an
    elastic supervised session; when given, the header grows a pool
    line (current rank-pool size, restart count, applied resizes and
    any resize pending at the next epoch boundary).
    """
    uptime = time.monotonic() - hub.started_at
    with hub._lock:
        samplers = dict(hub.samplers)
    lines = [
        f"repro top — uptime {uptime:6.1f}s  ranks {len(samplers)}  "
        f"ticks {hub.n_ticks}"
    ]
    if supervisor is not None:
        pool = supervisor.pool_size
        pending = supervisor.pending_resize
        lines.append(
            f"pool {pool if pool is not None else '?':>4}  "
            f"restarts {supervisor.n_restarts}  "
            f"resizes {len(supervisor.resize_history())}"
            + (f"  pending resize -> {pending}" if pending is not None else "")
        )

    # Per-rank MPI table.
    lines.append("")
    lines.append(
        f"{'rank':<6} {'sent':>8} {'recv':>8} {'sent/s':>8} {'recv/s':>8} "
        f"{'bytes':>9} {'pending':>8}"
    )
    for rank in sorted(samplers, key=str):
        s = samplers[rank]
        _, sent = s.last("mpi.sent.messages", 1)
        _, recv = s.last("mpi.recv.messages", 1)
        _, nbytes = s.last("mpi.sent.bytes", 1)
        _, pending = s.last("mpi.pending.depth", 1)
        lines.append(
            f"{str(rank):<6} "
            f"{_fmt_count(float(sent[-1]) if sent.size else 0):>8} "
            f"{_fmt_count(float(recv[-1]) if recv.size else 0):>8} "
            f"{s.rate('mpi.sent.messages', window):>8.1f} "
            f"{s.rate('mpi.recv.messages', window):>8.1f} "
            f"{_fmt_count(float(nbytes[-1]) if nbytes.size else 0):>9} "
            f"{float(pending[-1]) if pending.size else 0:>8.0f}"
        )

    # Per-component table (merged across ranks; each component runs on
    # exactly one rank, so summing is exact).
    components: dict[str, dict[str, float]] = {}
    for s in samplers.values():
        for name in _component_names(s):
            row = components.setdefault(
                name, {"emits": 0.0, "handler_s": 0.0, "duty": 0.0}
            )
            for series in s.names():
                if series.startswith(f"component.{name}.emit["):
                    _, v = s.last(series, 1)
                    if v.size:
                        row["emits"] += float(v[-1])
            for suffix in ("on_message.seconds.sum", "generate.seconds.sum"):
                series = f"component.{name}.{suffix}"
                _, v = s.last(series, 1)
                if v.size:
                    row["handler_s"] += float(v[-1])
                row["duty"] += s.rate(series, window)
    if components:
        lines.append("")
        lines.append(
            f"{'component':<20} {'emits':>9} {'handler s':>10} {'duty':>7}"
        )
        for name in sorted(components):
            row = components[name]
            lines.append(
                f"{name:<20} {_fmt_count(row['emits']):>9} "
                f"{row['handler_s']:>9.2f}s {row['duty']:>6.1%}"
            )

    # Health events (most recent last).
    events = hub.health_events()
    if events:
        lines.append("")
        lines.append("health events:")
        for rank, ev in events[-5:]:
            state = "FIRED" if ev.fired else "resolved"
            lines.append(
                f"  rank {rank}: {state} {ev.rule} "
                f"({ev.description}; value {ev.value:.3g})"
            )
    return "\n".join(lines)
