"""Declarative health rules evaluated against the live sampler.

A rule is ``metric agg[window] cmp threshold`` — e.g.

* ``mpi.pending.depth mean[5] > 100``   (queue-depth growth)
* ``mpi.recv.retries rate[10] > 2``     (retry storm)
* ``strategy.stale_corr.age last > 30`` (stale correlations)

Rules are evaluated by the :class:`~repro.obs.live.sampler.TimeSeriesSampler`
after every tick, entirely from the sampled rings (no registry access),
and fire structured :class:`HealthEvent`\\ s on the *transition* into and
out of violation — a sustained breach produces one ``fired`` event, not
one per tick.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Aggregations a rule may apply over its window of samples.
AGGS = ("last", "mean", "max", "min", "rate", "delta")

#: Comparison operators.
CMPS = (">", ">=", "<", "<=")


@dataclass(frozen=True)
class HealthRule:
    """One declarative threshold rule over a sampled series."""

    name: str
    metric: str
    agg: str = "last"
    window: float | None = None
    cmp: str = ">"
    threshold: float = 0.0

    def __post_init__(self):
        if self.agg not in AGGS:
            raise ValueError(
                f"rule {self.name!r}: unknown agg {self.agg!r} "
                f"(expected one of {', '.join(AGGS)})"
            )
        if self.cmp not in CMPS:
            raise ValueError(
                f"rule {self.name!r}: unknown cmp {self.cmp!r} "
                f"(expected one of {', '.join(CMPS)})"
            )

    @classmethod
    def parse(cls, text: str, name: str | None = None) -> "HealthRule":
        """Parse ``"metric agg[window] cmp threshold"``.

        The window suffix is optional (``mean`` = mean over the whole
        ring); ``agg`` defaults to ``last`` when only three fields are
        given (``"metric > 5"``).
        """
        parts = text.split()
        if len(parts) == 3:
            metric, cmp, threshold = parts
            agg, window = "last", None
        elif len(parts) == 4:
            metric, agg_part, cmp, threshold = parts
            if "[" in agg_part:
                if not agg_part.endswith("]"):
                    raise ValueError(f"bad health rule {text!r}: unclosed '['")
                agg, win_text = agg_part[:-1].split("[", 1)
                window = float(win_text)
            else:
                agg, window = agg_part, None
        else:
            raise ValueError(
                f"bad health rule {text!r}: expected "
                f"'metric [agg[window]] cmp threshold'"
            )
        return cls(
            name=name or metric,
            metric=metric,
            agg=agg,
            window=window,
            cmp=cmp,
            threshold=float(threshold),
        )

    def describe(self) -> str:
        win = f"[{self.window:g}]" if self.window is not None else ""
        return f"{self.metric} {self.agg}{win} {self.cmp} {self.threshold:g}"

    # -- evaluation ---------------------------------------------------------

    def value(self, sampler) -> float:
        """The rule's aggregated observation from the sampler rings."""
        if self.agg == "rate":
            return sampler.rate(self.metric, self.window)
        if self.agg == "delta":
            return sampler.delta(self.metric, self.window)
        t, v = sampler._windowed(self.metric, self.window)
        if v.size == 0:
            return float("nan")
        if self.agg == "last":
            return float(v[-1])
        if self.agg == "mean":
            return float(v.mean())
        if self.agg == "max":
            return float(v.max())
        return float(v.min())

    def breached(self, value: float) -> bool:
        if value != value:  # NaN: no data yet, never a breach
            return False
        if self.cmp == ">":
            return value > self.threshold
        if self.cmp == ">=":
            return value >= self.threshold
        if self.cmp == "<":
            return value < self.threshold
        return value <= self.threshold


@dataclass(frozen=True)
class HealthEvent:
    """A rule transitioning into (``fired``) or out of violation."""

    rule: str
    metric: str
    fired: bool
    value: float
    threshold: float
    t: float
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "fired": self.fired,
            "value": self.value,
            "threshold": self.threshold,
            "t": self.t,
            "description": self.description,
        }


class HealthMonitor:
    """Evaluates a rule set on each sampler tick, edge-triggered.

    Tracks which rules are currently in violation and emits a
    :class:`HealthEvent` only on state transitions, so the event stream
    stays small no matter how long a breach lasts.
    """

    __slots__ = ("rules", "active")

    def __init__(self, rules=()):
        self.rules: list[HealthRule] = []
        self.active: set[str] = set()
        for rule in rules:
            self.add(rule)

    def add(self, rule: "HealthRule | str", name: str | None = None) -> None:
        if isinstance(rule, str):
            rule = HealthRule.parse(rule, name=name)
        # Add-once rule configuration, not per-tick telemetry.
        self.rules.append(rule)  # repro-lint: disable=repo.obs-bounded

    def evaluate(self, sampler, now: float) -> list[HealthEvent]:
        """Check every rule against the sampler; return transition events."""
        events: list[HealthEvent] = []
        for rule in self.rules:
            value = rule.value(sampler)
            breached = rule.breached(value)
            was_active = rule.name in self.active
            if breached and not was_active:
                self.active.add(rule.name)
            elif not breached and was_active:
                self.active.discard(rule.name)
            else:
                continue
            events.append(
                HealthEvent(
                    rule=rule.name,
                    metric=rule.metric,
                    fired=breached,
                    value=value,
                    threshold=rule.threshold,
                    t=now,
                    description=rule.describe(),
                )
            )
        return events
