"""Time-series sampler: periodic registry snapshots into bounded rings.

The :class:`TimeSeriesSampler` turns the cumulative
:class:`~repro.obs.registry.MetricsRegistry` of one rank into live time
series: every ``sample()`` tick pushes the current value of each counter
and gauge — and the running count/sum of each histogram — into a
per-metric :class:`~repro.obs.live.rings.SeriesRing`.  Memory is bounded
by ``capacity * n_metrics`` and writes are allocation-free once a
metric's ring exists, so the sampler can stay on for the whole session.

The query API (:meth:`last`, :meth:`rate`, :meth:`delta`,
:meth:`percentiles`) is the contract the serving layer reads from; the
``repro top`` view and the declarative health monitors are both clients
of exactly these methods.

The sampler may run on its own daemon thread (:meth:`start` /
:meth:`stop`) while the instrumented rank keeps mutating the registry.
Registry mutation is only ever metric *creation* plus scalar updates, so
each tick takes one :func:`~repro.obs.registry.registry_snapshot` (the
shared race-tolerant walk the serving layer's ``/telemetry`` route also
uses) and simply skips the tick if creation races the snapshot — a
missed tick is fine, a crashed sampler is not.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Sequence

import numpy as np

from repro.obs.live.rings import EventRing, SeriesRing
from repro.obs.registry import registry_snapshot

#: Default sampling interval in seconds (the check.sh overhead budget is
#: measured at this rate).
DEFAULT_INTERVAL = 0.05

#: Default per-metric ring capacity (~30 s of history at the default rate).
DEFAULT_CAPACITY = 600


class TimeSeriesSampler:
    """Samples one rank's registry into per-metric ring buffers.

    Parameters
    ----------
    obs:
        The rank's ``Obs`` handle (anything with ``.metrics`` exposing
        ``counters`` / ``gauges`` / ``histograms`` dicts).
    capacity:
        Per-metric ring length.
    health:
        Optional :class:`~repro.obs.live.health.HealthMonitor` evaluated
        after every tick; its events land in the :attr:`health_events`
        ring (same bounded-memory rule as every other live series) and
        are mirrored into the rank's flight recorder when one is attached.
    """

    __slots__ = (
        "obs",
        "capacity",
        "series",
        "health",
        "health_events",
        "n_samples",
        "started_at",
        "_thread",
        "_stop",
        "_lock",
    )

    def __init__(self, obs, capacity: int = DEFAULT_CAPACITY, health=None):
        self.obs = obs
        self.capacity = capacity
        self.series: dict[str, SeriesRing] = {}
        self.health = health
        self.health_events = EventRing(capacity)
        self.n_samples = 0
        self.started_at: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- sampling -----------------------------------------------------------

    def _ring(self, name: str) -> SeriesRing:
        ring = self.series.get(name)
        if ring is None:
            ring = self.series[name] = SeriesRing(self.capacity)
        return ring

    def sample(self, now: float | None = None) -> None:
        """Snapshot every registry metric at monotonic time ``now``.

        Thread-safe against concurrent metric creation: a tick that races
        a registry insert is skipped rather than crashed.
        """
        if now is None:
            now = time.monotonic()
        snap = registry_snapshot(self.obs.metrics)
        if snap is None:  # raced a concurrent metric insert; skip this tick
            return
        with self._lock:
            for name, value in snap["counters"].items():
                self._ring(name).push(now, value)
            for name, g in snap["gauges"].items():
                self._ring(name).push(now, g["last"])
            for name, h in snap["histograms"].items():
                self._ring(name + ".count").push(now, h["count"])
                self._ring(name + ".sum").push(now, h["sum"])
            self.n_samples += 1
        if self.health is not None:
            events = self.health.evaluate(self, now)
            if events:
                flight = getattr(self.obs, "flight", None)
                for ev in events:
                    self.health_events.append(ev)
                    self.obs.metrics.counter(
                        "obs.health.events[" + ev.rule + "]"
                    ).inc()
                    if flight is not None:
                        flight.record_health(ev.rule, ev.metric, ev.fired)

    # -- query API (the serving-layer contract) -----------------------------

    def names(self) -> list[str]:
        """Sampled series names, sorted."""
        with self._lock:
            return sorted(self.series)

    def last(self, name: str, n: int | None = None):
        """The newest ``n`` samples of ``name`` as ``(t, v)`` arrays."""
        with self._lock:
            ring = self.series.get(name)
            if ring is None:
                return np.empty(0), np.empty(0)
            return ring.last(n)

    def delta(self, name: str, window: float | None = None) -> float:
        """Change in value over ``window`` seconds (whole ring if None)."""
        t, v = self._windowed(name, window)
        if v.size < 2:
            return 0.0
        return float(v[-1] - v[0])

    def rate(self, name: str, window: float | None = None) -> float:
        """Per-second rate of change over ``window`` seconds.

        For counter series this is the event rate; for ``.sum`` series
        the seconds-per-second duty cycle.  Returns 0.0 when fewer than
        two samples span the window.
        """
        t, v = self._windowed(name, window)
        if v.size < 2:
            return 0.0
        dt = float(t[-1] - t[0])
        if dt <= 0.0:
            return 0.0
        return float(v[-1] - v[0]) / dt

    def percentiles(
        self,
        name: str,
        qs: Sequence[float] = (0.5, 0.95, 0.99),
        window: float | None = None,
    ) -> dict[float, float]:
        """Windowed quantiles of the sampled values of ``name``."""
        t, v = self._windowed(name, window)
        if v.size == 0:
            return {q: float("nan") for q in qs}
        quantiles = np.quantile(v, list(qs))
        return {q: float(x) for q, x in zip(qs, quantiles)}

    def _windowed(self, name: str, window: float | None):
        with self._lock:
            ring = self.series.get(name)
            if ring is None:
                return np.empty(0), np.empty(0)
            if window is None:
                return ring.last(None)
            return ring.window(window)

    # -- background driver --------------------------------------------------

    def start(self, interval: float = DEFAULT_INTERVAL) -> None:
        """Run :meth:`sample` every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self.started_at = time.monotonic()
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.sample()

        self._thread = threading.Thread(
            target=loop, name="obs-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the driver thread and take one final sample."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.sample()


def sample_all(samplers: Iterable[TimeSeriesSampler]) -> None:
    """Tick several samplers at one shared timestamp (cross-rank views)."""
    now = time.monotonic()
    for s in samplers:
        s.sample(now)
