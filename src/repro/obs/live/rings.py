"""Preallocated ring buffers — the live plane's only storage primitive.

Everything the live telemetry plane retains is bounded by construction:
a :class:`SeriesRing` holds the last ``capacity`` (timestamp, value)
samples of one metric in two preallocated numpy arrays, and an
:class:`EventRing` holds the last ``capacity`` structured events in a
preallocated slot list.  Steady-state writes touch one slot and one
cursor — no allocation, no resize — which is what keeps an always-on
sampler affordable (the low-latency-patterns idiom: fixed layouts,
wrap-around cursors, no growth on the hot path).

Reads (``last``, ``values``, ``events``) materialise ordered copies;
queries are off the hot path, so allocation there is fine.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class SeriesRing:
    """Last-``capacity`` samples of one time series, preallocated.

    ``push`` is O(1) and allocation-free after construction.  Samples are
    (monotonic timestamp, float value) pairs; the ring remembers how many
    samples it has ever seen, so callers can detect overwrite loss.
    """

    __slots__ = ("capacity", "n_seen", "_t", "_v")

    def __init__(self, capacity: int):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self.n_seen = 0
        self._t = np.full(capacity, np.nan)
        self._v = np.full(capacity, np.nan)

    def __len__(self) -> int:
        return min(self.n_seen, self.capacity)

    @property
    def n_dropped(self) -> int:
        """Samples overwritten since construction."""
        return max(0, self.n_seen - self.capacity)

    def push(self, t: float, value: float) -> None:
        i = self.n_seen % self.capacity
        self._t[i] = t
        self._v[i] = value
        self.n_seen += 1

    def last(self, n: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The newest ``n`` samples (all retained when ``n`` is None).

        Returns ``(t, v)`` arrays in chronological order — copies, safe
        to hold across further pushes.
        """
        held = len(self)
        if n is None or n > held:
            n = held
        if n <= 0:
            return np.empty(0), np.empty(0)
        end = self.n_seen % self.capacity
        idx = (np.arange(end - n, end)) % self.capacity
        return self._t[idx].copy(), self._v[idx].copy()

    def window(self, seconds: float) -> tuple[np.ndarray, np.ndarray]:
        """Retained samples no older than ``seconds`` before the newest."""
        t, v = self.last(None)
        if t.size == 0:
            return t, v
        keep = t >= t[-1] - seconds
        return t[keep], v[keep]


class EventRing:
    """Last-``capacity`` structured events, preallocated slot list.

    The slot list is allocated once; ``append`` assigns into the next
    slot and advances the cursor, so a full ring overwrites the oldest
    event rather than growing.  ``events()`` returns the retained events
    oldest-first.
    """

    __slots__ = ("capacity", "n_seen", "_slots")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.n_seen = 0
        self._slots: list[Any] = [None] * capacity

    def __len__(self) -> int:
        return min(self.n_seen, self.capacity)

    @property
    def n_dropped(self) -> int:
        """Events overwritten since construction."""
        return max(0, self.n_seen - self.capacity)

    def append(self, event: Any) -> None:
        self._slots[self.n_seen % self.capacity] = event
        self.n_seen += 1

    def events(self) -> list[Any]:
        """Retained events, oldest first (a fresh list)."""
        held = len(self)
        if held < self.capacity:
            return list(self._slots[:held])
        start = self.n_seen % self.capacity
        return self._slots[start:] + self._slots[:start]

    def clear(self) -> None:
        self.n_seen = 0
