"""Exporters: Prometheus-style text exposition and JSONL event streams.

:func:`render_prometheus` turns a :class:`~repro.obs.registry.MetricsRegistry`
(or its interchange dict) into the plain-text exposition format, mapping
the library's dotted, bracketed metric names onto Prometheus conventions:
dots become underscores and a trailing ``[label]`` becomes a ``key=""``
label pair (``component.cleaning.emit[quotes]`` ->
``component_cleaning_emit{port="quotes"}``).  Histograms are exposed as
``_count`` / ``_sum`` plus quantile gauges.

:class:`JsonlWriter` is the shared append-only event-stream writer used
by the flight recorder, health monitors and the CLI — one JSON object
per line, flushed per write so a crash never loses buffered events.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> tuple[str, str]:
    """Split ``a.b.c[x]`` into a sanitized metric name and a label block."""
    label = ""
    if name.endswith("]") and "[" in name:
        name, bracket = name[:-1].rsplit("[", 1)
        label = '{label="%s"}' % bracket.replace('"', "'")
    return _NAME_RE.sub("_", name.replace(".", "_")), label


def render_prometheus(metrics) -> str:
    """Render a registry (or its ``to_dict``/summary form) as exposition text."""
    if hasattr(metrics, "summary"):
        metrics = metrics.summary()
    lines: list[str] = []
    for name, value in sorted(metrics.get("counters", {}).items()):
        pname, label = _prom_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname}{label} {value}")
    for name, g in sorted(metrics.get("gauges", {}).items()):
        pname, label = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname}{label} {g['last']}")
        lines.append(f"{pname}_max{label} {g['max']}")
    for name, h in sorted(metrics.get("histograms", {}).items()):
        pname, label = _prom_name(name)
        # Accept both summary dicts and raw sample lists.
        if isinstance(h, list):
            count, total = len(h), sum(h)
            quantiles = {}
        else:
            count, total = h.get("count", 0), h.get("sum", 0.0)
            quantiles = {
                q: h[k]
                for q, k in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))
                if k in h
            }
        lines.append(f"# TYPE {pname} summary")
        lines.append(f"{pname}_count{label} {count}")
        lines.append(f"{pname}_sum{label} {total}")
        for q, v in quantiles.items():
            if label:
                qlabel = label[:-1] + f',quantile="{q}"}}'
            else:
                qlabel = f'{{quantile="{q}"}}'
            lines.append(f"{pname}{qlabel} {v}")
    return "\n".join(lines) + "\n"


class JsonlWriter:
    """Append-only JSONL event-stream writer, flushed per line."""

    __slots__ = ("path", "_fh", "n_written")

    def __init__(self, path: str | Path, append: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if append else "w")
        self.n_written = 0

    def write(self, event: dict) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        self.n_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
