"""repro.obs.live — the live telemetry plane.

Where ``repro.obs`` reports *after* a session, this package observes it
*while it runs*, under a strict bounded-memory discipline (everything
retained lives in a preallocated ring; the ``repo.obs-bounded`` lint
rule enforces it):

* :mod:`~repro.obs.live.rings` — preallocated series/event ring buffers;
* :mod:`~repro.obs.live.sampler` — interval snapshots of the registry
  with the ``last``/``rate``/``percentiles`` query API;
* :mod:`~repro.obs.live.flight` — per-rank flight recorder dumped to
  JSONL on faults ("last 2000 events before the crash");
* :mod:`~repro.obs.live.profiler` — thread-based sampling profiler
  attributing stacks to the active obs span;
* :mod:`~repro.obs.live.health` — declarative threshold rules raising
  structured :class:`HealthEvent`\\ s;
* :mod:`~repro.obs.live.export` — Prometheus text exposition and JSONL
  event streams;
* :mod:`~repro.obs.live.top` — the ``repro top`` hub and frame renderer.
"""

from repro.obs.live.export import JsonlWriter, render_prometheus
from repro.obs.live.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    load_flight_dump,
)
from repro.obs.live.health import HealthEvent, HealthMonitor, HealthRule
from repro.obs.live.profiler import (
    PROFILE_SCHEMA,
    SamplingProfiler,
    attributed_fraction,
    merge_profiles,
    render_flame_table,
    span_totals,
)
from repro.obs.live.rings import EventRing, SeriesRing
from repro.obs.live.sampler import TimeSeriesSampler, sample_all
from repro.obs.live.top import TelemetryHub, render_top

__all__ = [
    "EventRing",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "HealthEvent",
    "HealthMonitor",
    "HealthRule",
    "JsonlWriter",
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "SeriesRing",
    "TelemetryHub",
    "TimeSeriesSampler",
    "attributed_fraction",
    "load_flight_dump",
    "merge_profiles",
    "render_flame_table",
    "render_prometheus",
    "render_top",
    "sample_all",
    "span_totals",
]
