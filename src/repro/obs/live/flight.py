"""Per-rank flight recorder: the last N structured events before a crash.

A :class:`FlightRecorder` is a bounded :class:`~repro.obs.live.rings.EventRing`
of small event dicts — sends, receives, component emits, checkpoint
epochs, fault injections, health firings — kept per rank and dumped to
JSONL when a rank fails (``FaultDetected`` / ``InjectedCrash`` /
``RecvTimeout``) or on demand.  The dump answers "what were the last
2000 things this rank did before it died" without ever paying for
unbounded tracing.

Determinism contract: events carry only *logical* fields (peer ranks,
tags, ports, per-stream indices) — never wall times or queue depths — so
the same seeded session records the same events on the thread and the
process backend.  Because cross-stream arrival interleave is the one
thing the backends may legitimately order differently, dumps are written
in **canonical stream order**: events are stably sorted by their stream
key (kind + peer/port identity), which preserves each stream's FIFO
order (deterministic) while making the interleave irrelevant.  The chaos
suite asserts dump identity across backends on exactly this form.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.live.rings import EventRing

#: Dump header schema tag.
FLIGHT_SCHEMA = "repro.flight/v1"

#: Default ring capacity: the "last 2000 events" view.
DEFAULT_CAPACITY = 2000


def _stream_key(event: dict) -> tuple:
    """The (kind, peer identity) key that names an event's FIFO stream."""
    kind = event.get("kind", "")
    return (
        kind,
        str(event.get("peer", "")),
        str(event.get("component", "")),
        str(event.get("port", "")),
        str(event.get("tag", "")),
    )


class FlightRecorder:
    """Bounded ring of one rank's recent structured events.

    ``record`` assigns each event an index within its stream (the
    ``(kind, peer/component/port/tag)`` FIFO it belongs to), giving every
    event a deterministic identity independent of cross-stream
    interleave.  Typed helpers (:meth:`record_send` etc.) are what the
    substrate hooks call; ``record`` is the general entry point for
    domain events.
    """

    __slots__ = ("rank", "ring", "_stream_seq")

    def __init__(self, rank: int | str = 0, capacity: int = DEFAULT_CAPACITY):
        self.rank = rank
        self.ring = EventRing(capacity)
        self._stream_seq: dict[tuple, int] = {}

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        """Record one event; assigns its per-stream index ``i``."""
        event = {"kind": kind, **fields}
        key = _stream_key(event)
        i = self._stream_seq.get(key, 0)
        self._stream_seq[key] = i + 1
        event["i"] = i
        self.ring.append(event)

    def record_send(self, peer: int, tag: int) -> None:
        """A data-plane send to world rank ``peer``."""
        self.record("send", peer=peer, tag=tag)

    def record_recv(self, peer: int, tag: int) -> None:
        """A matched data-plane receive from world rank ``peer``."""
        self.record("recv", peer=peer, tag=tag)

    def record_emit(self, component: str, port: str) -> None:
        """A component emitted on one of its output ports."""
        self.record("emit", component=component, port=port)

    def record_checkpoint(self, epoch: int | None = None) -> None:
        """This rank completed an epoch checkpoint."""
        if epoch is None:
            self.record("checkpoint")
        else:
            self.record("checkpoint", epoch=epoch)

    def record_fault(self, event: tuple) -> None:
        """Mirror a :class:`~repro.faults.injector.FaultInjector` event.

        Injector events are already deterministic tuples
        (``(kind, rank, ...)``); they are stored under ``fault.<kind>``
        with their payload fields preserved positionally.
        """
        kind = str(event[0])
        self.record("fault." + kind, detail=list(event[1:]))

    def record_health(self, rule: str, metric: str, fired: bool) -> None:
        """A health rule transitioned (fired or resolved)."""
        self.record(
            "health", component=rule, port="fired" if fired else "resolved",
            peer=metric,
        )

    # -- views & dumps ------------------------------------------------------

    @property
    def n_seen(self) -> int:
        return self.ring.n_seen

    @property
    def n_dropped(self) -> int:
        return self.ring.n_dropped

    def events(self) -> list[dict]:
        """Retained events in ring (arrival) order, oldest first."""
        return self.ring.events()

    def canonical_events(self) -> list[dict]:
        """Retained events in canonical stream order.

        A stable sort by stream key: per-stream FIFO order (which both
        backends guarantee) is preserved; cross-stream interleave (which
        they do not) is normalised away.  This is the deterministic form
        the cross-backend identity tests compare.
        """
        return sorted(self.events(), key=lambda e: (_stream_key(e), e["i"]))

    def dump_jsonl(
        self, path: str | Path, reason: str = "on-demand"
    ) -> Path:
        """Write a header line plus the canonical event lines as JSONL."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "schema": FLIGHT_SCHEMA,
            "rank": self.rank,
            "reason": reason,
            "n_seen": self.n_seen,
            "n_dropped": self.n_dropped,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for event in self.canonical_events():
            lines.append(json.dumps(event, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        return path


def load_flight_dump(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a dump written by :meth:`FlightRecorder.dump_jsonl`.

    Returns ``(header, events)`` and validates the schema tag, so a
    foreign JSONL file fails loudly instead of parsing as garbage.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty flight dump")
    header = json.loads(lines[0])
    schema = header.get("schema")
    if schema != FLIGHT_SCHEMA:
        raise ValueError(
            f"{path}: not a flight dump (schema {schema!r}, expected "
            f"{FLIGHT_SCHEMA!r})"
        )
    return header, [json.loads(line) for line in lines[1:]]
