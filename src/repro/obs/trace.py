"""A lightweight span tracer: named spans, parent links, wall/CPU time.

Spans form a tree per tracer (one tracer per rank): ``span()`` is a
context manager that pushes onto an explicit stack, so nesting mirrors the
dynamic call structure and ordering is the deterministic creation order.
``add_span`` records *synthetic* spans — durations accumulated elsewhere
(e.g. a component's total handler time) attached to the tree after the
fact.

Per-rank traces are merged with :meth:`SpanTracer.merge_list`, which
re-bases span ids and tags every span with its source rank, producing one
forest whose roots are the per-rank session spans.  Export formats: a
JSON-ready list of dicts (:meth:`to_list`) and an indented text flame
summary (:func:`render_flame`).
"""

from __future__ import annotations

import time
from typing import Any


class Span:
    """One node of the trace tree."""

    __slots__ = ("id", "name", "parent", "start", "wall", "cpu", "tags", "rank")

    def __init__(
        self,
        id: int,
        name: str,
        parent: int | None,
        start: float,
        wall: float = 0.0,
        cpu: float = 0.0,
        tags: dict | None = None,
        rank: int | str | None = None,
    ):
        self.id = id
        self.name = name
        self.parent = parent
        self.start = start
        self.wall = wall
        self.cpu = cpu
        self.tags = tags or {}
        self.rank = rank

    def to_dict(self) -> dict:
        d = {
            "id": self.id,
            "name": self.name,
            "parent": self.parent,
            "start": self.start,
            "wall": self.wall,
            "cpu": self.cpu,
            "tags": dict(self.tags),
        }
        if self.rank is not None:
            d["rank"] = self.rank
        return d


class _SpanContext:
    """Context manager driving one live span."""

    __slots__ = ("_tracer", "_span", "_t0", "_c0")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self._tracer._stack.append(self._span.id)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.wall = time.perf_counter() - self._t0
        self._span.cpu = time.process_time() - self._c0
        popped = self._tracer._stack.pop()
        assert popped == self._span.id, "span stack corrupted"


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanTracer:
    """Collects a tree of spans for one rank (not thread-safe by design:
    each SPMD rank owns its own tracer)."""

    __slots__ = ("enabled", "spans", "_stack", "_epoch")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._epoch = time.perf_counter()

    @property
    def current_id(self) -> int | None:
        """Id of the innermost open span, or None at the root."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **tags: Any) -> _SpanContext | _NullSpanContext:
        """Open a child span of the innermost open span."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        s = Span(
            id=len(self.spans),
            name=name,
            parent=self.current_id,
            start=time.perf_counter() - self._epoch,
            tags=tags,
        )
        self.spans.append(s)
        return _SpanContext(self, s)

    def add_span(
        self,
        name: str,
        wall: float,
        cpu: float = 0.0,
        parent: int | None = None,
        **tags: Any,
    ) -> Span | None:
        """Record a synthetic span from an externally accumulated duration.

        ``parent=None`` attaches to the innermost open span (or the root).
        Returns the span so callers can hang children off it.
        """
        if not self.enabled:
            return None
        s = Span(
            id=len(self.spans),
            name=name,
            parent=parent if parent is not None else self.current_id,
            start=time.perf_counter() - self._epoch,
            wall=float(wall),
            cpu=float(cpu),
            tags=tags,
        )
        self.spans.append(s)
        return s

    # -- export & merging --------------------------------------------------

    def to_list(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]

    @staticmethod
    def merge_list(
        per_rank: dict[int | str, list[dict]]
    ) -> list[dict]:
        """Merge per-rank span lists into one forest.

        Span ids are re-based to stay unique and every span is tagged with
        its source rank; parent links are preserved within each rank.
        """
        merged: list[dict] = []
        offset = 0
        for rank in sorted(per_rank, key=str):
            spans = per_rank[rank]
            for s in spans:
                d = dict(s)
                d["id"] = s["id"] + offset
                d["parent"] = None if s["parent"] is None else s["parent"] + offset
                d["rank"] = rank
                merged.append(d)
            offset += len(spans)
        return merged


def render_flame(spans: list[dict], unit: str = "s") -> str:
    """Indented text flame summary of a span forest.

    Children are printed in creation order beneath their parent; each line
    shows wall and CPU seconds plus any tags.
    """
    by_parent: dict[int | None, list[dict]] = {}
    ids = {s["id"] for s in spans}
    for s in spans:
        parent = s["parent"] if s["parent"] in ids else None
        by_parent.setdefault(parent, []).append(s)

    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for s in by_parent.get(parent, []):
            rank = f" [rank {s['rank']}]" if "rank" in s else ""
            tags = ""
            if s.get("tags"):
                tags = " " + " ".join(
                    f"{k}={v}" for k, v in sorted(s["tags"].items())
                )
            lines.append(
                f"{'  ' * depth}{s['name']:<{max(1, 28 - 2 * depth)}} "
                f"wall {s['wall']:.4f}{unit}  cpu {s['cpu']:.4f}{unit}"
                f"{rank}{tags}"
            )
            walk(s["id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)
