"""repro: reproduction of "A High Performance Pair Trading Application".

An open-source implementation of the paper's complete system (IPPS 2009,
Wang, Rostoker & Wagner):

* the **MarketMiner** analytics platform — an MPI-style, modular, DAG
  stream-processing infrastructure (:mod:`repro.marketminer` over
  :mod:`repro.mpi`);
* the **canonical intra-day pair trading strategy** with the Table-I
  parameterisation (:mod:`repro.strategy`);
* the three **correlation measures** — Pearson, robust Maronna, Combined —
  with online sliding-window and block-parallel engines (:mod:`repro.corr`);
* the **TAQ data substrate**: synthetic multi-factor quote streams, file
  IO, cleaning (:mod:`repro.taq`, :mod:`repro.clean`, :mod:`repro.bars`);
* three **backtesting architectures** matching the paper's Approaches 1–3
  plus an SGE batch-queue simulator (:mod:`repro.backtest`,
  :mod:`repro.sge`);
* the paper's **performance metrics** and treatment summaries
  (:mod:`repro.metrics`).

Quick start::

    from repro.backtest import SweepConfig, run_sweep
    from repro.metrics import treatment_summaries, format_treatment_table

    store, grid = run_sweep(SweepConfig(n_symbols=8, n_days=2))
    tables = treatment_summaries(store, grid, "returns")
    print(format_treatment_table(tables, "Average cumulative returns"))
"""

from repro import (
    backtest,
    bars,
    clean,
    corr,
    marketminer,
    metrics,
    mpi,
    obs,
    sge,
    strategy,
    taq,
    util,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "backtest",
    "bars",
    "clean",
    "corr",
    "marketminer",
    "metrics",
    "mpi",
    "obs",
    "sge",
    "strategy",
    "taq",
    "util",
]
