"""Tick-data cleaning.

Raw TAQ quote streams contain transmission errors, human typos, electronic
test quotes and far-out limit orders (paper §III).  This subpackage
implements the paper's approach: "a very simple but effective TCP-like
filter to eliminate prices that are more than a few standard deviations
from their corresponding moving average and deviation", leaving residual
outliers to be down-weighted by the robust correlation measure.
"""

from repro.clean.filters import CleaningStats, TcpLikeFilter, clean_quotes

__all__ = ["CleaningStats", "TcpLikeFilter", "clean_quotes"]
