"""The paper's "TCP-like" moving average / deviation filter.

TCP's retransmission-timeout estimator (RFC 6298) tracks a smoothed value
and a smoothed deviation with exponential weights; the paper applies the
same idea to prices: maintain an EWMA of the price and of its absolute
deviation, and reject ticks "more than a few standard deviations from their
corresponding moving average and deviation".  Rejected ticks do not update
the estimates, so a burst of garbage cannot drag the filter along with it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.taq.types import validate_quote_array
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True, slots=True)
class CleaningStats:
    """Disposition counts for one cleaning pass."""

    total: int
    accepted: int
    rejected_outlier: int
    rejected_crossed: int

    @property
    def rejected(self) -> int:
        return self.rejected_outlier + self.rejected_crossed

    @property
    def acceptance_rate(self) -> float:
        return 1.0 if self.total == 0 else self.accepted / self.total


class TcpLikeFilter:
    """Streaming accept/reject filter for one price series.

    Parameters
    ----------
    alpha:
        EWMA gain for the smoothed price (TCP uses 1/8 for SRTT).
    beta:
        EWMA gain for the smoothed absolute deviation (TCP uses 1/4).
    k:
        Rejection threshold in smoothed deviations ("a few standard
        deviations"; default 6 — tuned so genuine diffusion under the
        EWMA lag never trips the filter while decimal slips, test quotes
        and far-out limit orders, all ≫ the deviation floor, always do).
    warmup:
        Number of initial ticks accepted unconditionally while the
        estimates form.
    min_dev_frac:
        Floor on the deviation as a fraction of the smoothed price, so a
        quiet stretch cannot shrink the acceptance band to zero width.
    """

    def __init__(
        self,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 6.0,
        warmup: int = 20,
        min_dev_frac: float = 1.0e-3,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        check_positive(k, "k")
        check_positive_int(warmup, "warmup")
        check_positive(min_dev_frac, "min_dev_frac")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)
        self.warmup = int(warmup)
        self.min_dev_frac = float(min_dev_frac)
        self._avg: float | None = None
        self._dev = 0.0
        self._seen = 0

    @property
    def average(self) -> float | None:
        """Current smoothed price (None before the first tick)."""
        return self._avg

    @property
    def deviation(self) -> float:
        """Current smoothed absolute deviation."""
        return self._dev

    def update(self, x: float) -> bool:
        """Feed one price; return True if accepted.

        Accepted prices update the moving estimates; rejected ones do not.
        """
        if not np.isfinite(x) or x <= 0.0:
            return False
        if self._avg is None:
            self._avg = x
            self._dev = abs(x) * self.min_dev_frac
            self._seen = 1
            return True

        in_warmup = self._seen < self.warmup
        band = self.k * max(self._dev, self._avg * self.min_dev_frac)
        if not in_warmup and abs(x - self._avg) > band:
            return False

        self._dev = (1.0 - self.beta) * self._dev + self.beta * abs(x - self._avg)
        self._avg = (1.0 - self.alpha) * self._avg + self.alpha * x
        self._seen += 1
        return True


def clean_quotes(
    records: np.ndarray,
    n_symbols: int,
    alpha: float = 0.125,
    beta: float = 0.25,
    k: float = 6.0,
    warmup: int = 20,
    min_dev_frac: float = 1.0e-3,
) -> tuple[np.ndarray, CleaningStats]:
    """Clean a chronological quote array with one filter per symbol.

    A quote is dropped if it is crossed (bid >= ask) or if its bid–ask
    midpoint is rejected by the symbol's :class:`TcpLikeFilter`.  Returns
    the surviving quotes (original order preserved) and disposition counts.
    """
    validate_quote_array(records, n_symbols=n_symbols)
    total = int(records.size)
    keep = np.zeros(total, dtype=bool)
    crossed = records["bid"] >= records["ask"]

    filters = [
        TcpLikeFilter(
            alpha=alpha, beta=beta, k=k, warmup=warmup, min_dev_frac=min_dev_frac
        )
        for _ in range(n_symbols)
    ]
    bam = 0.5 * (records["bid"] + records["ask"])
    symbols = records["symbol"]
    rejected_outlier = 0
    for i in range(total):
        if crossed[i]:
            continue
        if filters[symbols[i]].update(float(bam[i])):
            keep[i] = True
        else:
            rejected_outlier += 1

    cleaned = records[keep]
    stats = CleaningStats(
        total=total,
        accepted=int(keep.sum()),
        rejected_outlier=rejected_outlier,
        rejected_crossed=int(crossed.sum()),
    )
    return cleaned, stats
