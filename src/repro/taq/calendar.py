"""Trading calendars.

The paper's dataset is "one month (March 2008) which consists of 20 trading
days".  :func:`march_2008` reproduces exactly those dates (Good Friday,
March 21 2008, was a market holiday).  :class:`TradingCalendar` generalises
to arbitrary ranges for longer-horizon experiments ("longer time frames"
is one of the paper's future-work items).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TradingCalendar:
    """Business-day calendar between two dates with explicit holidays."""

    start: dt.date
    end: dt.date
    holidays: frozenset[dt.date] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end {self.end} before start {self.start}")
        object.__setattr__(self, "holidays", frozenset(self.holidays))

    def _gen_days(self) -> Iterator[dt.date]:
        day = self.start
        one = dt.timedelta(days=1)
        while day <= self.end:
            if day.weekday() < 5 and day not in self.holidays:
                yield day
            day += one

    def __iter__(self) -> Iterator[dt.date]:
        return self._gen_days()

    @property
    def days(self) -> tuple[dt.date, ...]:
        """All trading days in chronological order."""
        return tuple(self._gen_days())

    def __len__(self) -> int:
        return sum(1 for _ in self._gen_days())

    def is_trading_day(self, day: dt.date) -> bool:
        return (
            self.start <= day <= self.end
            and day.weekday() < 5
            and day not in self.holidays
        )

    @classmethod
    def from_days(cls, days: Iterable[dt.date]) -> "TradingCalendar":
        """Build a calendar whose trading days are exactly ``days``."""
        days = sorted(set(days))
        if not days:
            raise ValueError("need at least one trading day")
        for day in days:
            if day.weekday() >= 5:
                raise ValueError(f"{day} is a weekend, not a valid trading day")
        start, end = days[0], days[-1]
        wanted = set(days)
        holidays = {
            start + dt.timedelta(days=i)
            for i in range((end - start).days + 1)
            if (start + dt.timedelta(days=i)).weekday() < 5
            and (start + dt.timedelta(days=i)) not in wanted
        }
        return cls(start=start, end=end, holidays=frozenset(holidays))


#: NYSE holiday inside March 2008 (Good Friday).
_GOOD_FRIDAY_2008 = dt.date(2008, 3, 21)


def march_2008() -> TradingCalendar:
    """The paper's evaluation month: 20 NYSE trading days in March 2008."""
    return TradingCalendar(
        start=dt.date(2008, 3, 1),
        end=dt.date(2008, 3, 31),
        holidays=frozenset({_GOOD_FRIDAY_2008}),
    )
