"""Stock universes.

The paper trades "61 highly liquid US stocks frequently traded by
professional pair traders".  :func:`default_universe` provides 61 symbols
with a sector label and a circa-2008 base price each; sector structure
matters because the synthetic market generates genuine within-sector
correlation — the raw material of pair trading (the paper's fundamental
pairs, e.g. Exxon/Chevron, UPS/FedEx, Wal-Mart/Target, are all same-sector).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

#: (symbol, sector, base price in dollars).  Includes the paper's Table II
#: tickers (NVDA, ORCL, SLB, TWX, BK) and its named fundamental pairs.
_DEFAULT_MEMBERS: tuple[tuple[str, str, float], ...] = (
    ("XOM", "energy", 85.0),
    ("CVX", "energy", 86.0),
    ("COP", "energy", 76.0),
    ("SLB", "energy", 83.0),
    ("HAL", "energy", 38.0),
    ("OXY", "energy", 73.0),
    ("DVN", "energy", 104.0),
    ("APA", "energy", 112.0),
    ("VLO", "energy", 49.0),
    ("MSFT", "tech", 28.0),
    ("IBM", "tech", 114.0),
    ("ORCL", "tech", 19.5),
    ("NVDA", "tech", 18.0),
    ("INTC", "tech", 21.0),
    ("AMD", "tech", 6.5),
    ("CSCO", "tech", 24.0),
    ("HPQ", "tech", 47.0),
    ("DELL", "tech", 20.0),
    ("AAPL", "tech", 125.0),
    ("TXN", "tech", 29.0),
    ("QCOM", "tech", 41.0),
    ("EBAY", "tech", 27.0),
    ("YHOO", "tech", 28.0),
    ("GOOG", "tech", 440.0),
    ("JPM", "financial", 43.0),
    ("C", "financial", 21.0),
    ("BAC", "financial", 38.0),
    ("WFC", "financial", 29.0),
    ("GS", "financial", 165.0),
    ("MS", "financial", 42.0),
    ("MER", "financial", 45.0),
    ("LEH", "financial", 46.0),
    ("BK", "financial", 41.5),
    ("USB", "financial", 32.0),
    ("AXP", "financial", 43.0),
    ("WMT", "retail", 50.0),
    ("TGT", "retail", 51.0),
    ("HD", "retail", 27.0),
    ("LOW", "retail", 23.0),
    ("COST", "retail", 62.0),
    ("BBY", "retail", 42.0),
    ("SHLD", "retail", 99.0),
    ("UPS", "transport", 72.0),
    ("FDX", "transport", 89.0),
    ("UNP", "transport", 125.0),
    ("BNI", "transport", 90.0),
    ("CSX", "transport", 53.0),
    ("LUV", "transport", 12.0),
    ("PFE", "pharma", 21.0),
    ("MRK", "pharma", 41.0),
    ("JNJ", "pharma", 63.0),
    ("ABT", "pharma", 54.0),
    ("BMY", "pharma", 22.0),
    ("LLY", "pharma", 50.0),
    ("T", "telecom", 36.0),
    ("VZ", "telecom", 35.0),
    ("S", "telecom", 7.0),
    ("TWX", "media", 14.1),
    ("DIS", "media", 31.0),
    ("CBS", "media", 22.0),
    ("GE", "industrial", 34.0),
)


@dataclass(frozen=True)
class Universe:
    """An indexed set of symbols with sector labels and base prices."""

    symbols: tuple[str, ...]
    sectors: tuple[str, ...]
    base_prices: tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.symbols)
        if n == 0:
            raise ValueError("universe must contain at least one symbol")
        if len(set(self.symbols)) != n:
            raise ValueError("universe symbols must be unique")
        if len(self.sectors) != n or len(self.base_prices) != n:
            raise ValueError("symbols, sectors and base_prices must align")
        if any(p <= 0 for p in self.base_prices):
            raise ValueError("base prices must be positive")

    def __len__(self) -> int:
        return len(self.symbols)

    def index_of(self, symbol: str) -> int:
        """Index of ``symbol``; raises ``KeyError`` if absent."""
        try:
            return self.symbols.index(symbol)
        except ValueError:
            raise KeyError(f"symbol {symbol!r} not in universe") from None

    def sector_of(self, symbol: str) -> str:
        return self.sectors[self.index_of(symbol)]

    def pairs(self) -> Iterator[tuple[int, int]]:
        """All unordered symbol-index pairs: ``n * (n - 1) / 2`` of them.

        This is the paper's Φ — with the full 61-stock universe,
        ``len(list(u.pairs())) == 1830``.
        """
        return combinations(range(len(self)), 2)

    def n_pairs(self) -> int:
        n = len(self)
        return n * (n - 1) // 2

    def subset(self, n: int) -> "Universe":
        """First ``n`` symbols, preserving order (deterministic scaling knob)."""
        if not 1 <= n <= len(self):
            raise ValueError(f"subset size {n} outside [1, {len(self)}]")
        return Universe(
            symbols=self.symbols[:n],
            sectors=self.sectors[:n],
            base_prices=self.base_prices[:n],
        )


def default_universe(n: int | None = None) -> Universe:
    """The 61-stock universe (or its first ``n`` symbols).

    The member list interleaves sectors at the top so that small subsets
    still contain correlated same-sector pairs.
    """
    # Interleave sectors two-at-a-time so any small subset contains
    # same-sector (i.e. genuinely correlated) pairs: subset(8) spans 4
    # sectors with 2 names each.
    by_sector: dict[str, list[tuple[str, str, float]]] = {}
    for member in _DEFAULT_MEMBERS:
        by_sector.setdefault(member[1], []).append(member)
    interleaved: list[tuple[str, str, float]] = []
    buckets = list(by_sector.values())
    depth = 0
    while any(depth < len(b) for b in buckets):
        for bucket in buckets:
            interleaved.extend(bucket[depth : depth + 2])
        depth += 2

    symbols, sectors, prices = zip(*interleaved)
    universe = Universe(
        symbols=tuple(symbols),
        sectors=tuple(sectors),
        base_prices=tuple(prices),
    )
    if n is not None:
        return universe.subset(n)
    return universe
