"""TAQ-style file input/output.

The paper's Table II shows the raw quote schema: Timestamp, Symbol, Bid
Price, Ask Price, Bid Size, Ask Size.  This module reads and writes that
schema as CSV (the "Custom TAQ Files" data source of Figure 1) and renders
quote batches in the Table II layout for the Table-II benchmark.

Both directions are vectorised: the writer formats whole columns with
``np.char.mod`` and the reader splits whole columns with
``np.char.partition`` + ``astype``, falling back to a per-row pass only to
locate and report a malformed value (with ``path:line`` context).  Fields
are never quoted — the Table-II schema has no embedded commas — so a
straight comma split is exact for files this module writes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.taq.types import QUOTE_DTYPE, validate_quote_array
from repro.taq.universe import Universe
from repro.util.timeutil import MARKET_OPEN_SECONDS, seconds_to_clock

_HEADER = ["timestamp", "symbol", "bid", "ask", "bid_size", "ask_size"]

#: Line terminator (matches the ``csv`` module's default, so files written
#: before the vectorised writer and after it are byte-identical).
_EOL = "\r\n"


def _clock_columns(t: np.ndarray) -> np.ndarray:
    """Vectorised ``HH:MM:SS.ffffff`` wall-clock strings for a t column.

    The fractional second is rounded to microseconds with an explicit
    carry into the whole second (``x.9999997`` becomes the next second,
    not a clamped ``.999999``), so parsing the string back is within
    5e-7 s of the original.
    """
    whole = t.astype(np.int64)
    micros = np.rint((t - whole) * 1_000_000).astype(np.int64)
    carry = micros >= 1_000_000
    whole = whole + carry
    micros = micros - carry * 1_000_000
    total = MARKET_OPEN_SECONDS + whole
    h, rem = np.divmod(total, 3600)
    m, s = np.divmod(rem, 60)
    out = np.char.mod("%02d", h)
    for sep, col in ((":", m), (":", s)):
        out = np.char.add(np.char.add(out, sep), np.char.mod("%02d", col))
    return np.char.add(np.char.add(out, "."), np.char.mod("%06d", micros))


def write_taq_csv(path, quotes: np.ndarray, universe: Universe) -> None:
    """Write a quote array to ``path`` in the Table II column layout.

    Timestamps are written as wall-clock ``HH:MM:SS`` with the fractional
    second appended (TAQ itself is second-stamped; we keep the fraction so
    a round-trip is lossless).
    """
    validate_quote_array(quotes, n_symbols=len(universe))
    path = Path(path)
    if quotes.size == 0:
        path.write_text(",".join(_HEADER) + _EOL)
        return
    columns = (
        _clock_columns(quotes["t"]),
        np.asarray(universe.symbols)[quotes["symbol"]],
        np.char.mod("%.2f", quotes["bid"]),
        np.char.mod("%.2f", quotes["ask"]),
        np.char.mod("%d", quotes["bid_size"]),
        np.char.mod("%d", quotes["ask_size"]),
    )
    lines = columns[0]
    for col in columns[1:]:
        lines = np.char.add(np.char.add(lines, ","), col)
    path.write_text(
        ",".join(_HEADER) + _EOL + _EOL.join(lines.tolist()) + _EOL
    )


def _clock_to_seconds(stamp: str, path=None, line_no: int | None = None) -> float:
    """Parse one ``HH:MM:SS[.ffffff]`` stamp to seconds-from-open.

    ``path`` and ``line_no``, when given, prefix the error message so a
    malformed stamp deep inside a large file is locatable.
    """
    where = f"{path}:{line_no}: " if path is not None else ""
    parts = stamp.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"{where}bad timestamp {stamp!r}, expected HH:MM:SS[.ffffff]"
        )
    try:
        h, m = int(parts[0]), int(parts[1])
        s = float(parts[2])
    except ValueError:
        raise ValueError(
            f"{where}bad timestamp {stamp!r}, expected HH:MM:SS[.ffffff]"
        ) from None
    total = h * 3600 + m * 60 + s
    return total - MARKET_OPEN_SECONDS


def _parse_clock_column(stamps: np.ndarray, path) -> np.ndarray:
    """Timestamp column to seconds-from-open, vectorised with fallback."""
    first = np.char.partition(stamps, ":")
    second = np.char.partition(first[:, 2], ":")
    try:
        h = first[:, 0].astype(np.int64)
        m = second[:, 0].astype(np.int64)
        s = second[:, 2].astype(np.float64)
    except ValueError:
        # Some stamp is malformed; re-parse row by row to name the line.
        return np.array(
            [
                _clock_to_seconds(stamp, path=path, line_no=line_no)
                for line_no, stamp in enumerate(stamps.tolist(), start=2)
            ]
        )
    return h * 3600.0 + m * 60.0 + s - MARKET_OPEN_SECONDS


def _parse_number_column(
    column: np.ndarray, dtype, name: str, path
) -> np.ndarray:
    """A numeric CSV column via ``astype``, locating any bad value."""
    try:
        return column.astype(dtype)
    except ValueError:
        caster = float if dtype == np.float64 else int
        for line_no, value in enumerate(column.tolist(), start=2):
            try:
                caster(value)
            except ValueError:
                raise ValueError(
                    f"{path}:{line_no}: bad {name} value {value!r}"
                ) from None
        raise


def read_taq_csv(path, universe: Universe) -> np.ndarray:
    """Read a quote CSV written by :func:`write_taq_csv`.

    Symbols not present in ``universe`` raise ``KeyError`` — a file/universe
    mismatch is configuration error, not data to be silently dropped.
    Malformed rows raise ``ValueError`` with ``path:line`` context.
    """
    path = Path(path)
    lines = path.read_text().replace("\r\n", "\n").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    header = lines[0].split(",") if lines else None
    if header != _HEADER:
        raise ValueError(f"unexpected header {header!r} in {path}")
    if len(lines) == 1:
        return np.empty(0, dtype=QUOTE_DTYPE)
    rows = np.asarray(lines[1:])

    bad = np.char.count(rows, ",") != len(_HEADER) - 1
    if bad.any():
        line_no = int(np.flatnonzero(bad)[0]) + 2
        raise ValueError(
            f"{path}:{line_no}: expected {len(_HEADER)} fields"
        )
    columns = []
    rest = rows
    for _ in range(len(_HEADER) - 1):
        parts = np.char.partition(rest, ",")
        columns.append(parts[:, 0])
        rest = parts[:, 2]
    columns.append(rest)

    uniq, inverse = np.unique(columns[1], return_inverse=True)
    indices = np.array([universe.index_of(str(sym)) for sym in uniq])

    out = np.empty(rows.size, dtype=QUOTE_DTYPE)
    out["t"] = _parse_clock_column(columns[0], path)
    out["symbol"] = indices[inverse]
    out["bid"] = _parse_number_column(columns[2], np.float64, "bid", path)
    out["ask"] = _parse_number_column(columns[3], np.float64, "ask", path)
    out["bid_size"] = _parse_number_column(
        columns[4], np.int64, "bid_size", path
    )
    out["ask_size"] = _parse_number_column(
        columns[5], np.int64, "ask_size", path
    )
    validate_quote_array(out, n_symbols=len(universe))
    return out


def format_table2(quotes: np.ndarray, universe: Universe, limit: int = 12) -> str:
    """Render the first ``limit`` quotes in the paper's Table II layout."""
    validate_quote_array(quotes, n_symbols=len(universe))
    lines = [
        f"{'Timestamp':<10} {'Symbol':<7} {'Bid Price':>9} {'Ask Price':>9} "
        f"{'Bid Size':>8} {'Ask Size':>8}"
    ]
    for rec in quotes[:limit]:
        lines.append(
            f"{seconds_to_clock(float(rec['t'])):<10} "
            f"{universe.symbols[int(rec['symbol'])]:<7} "
            f"{float(rec['bid']):>9.2f} {float(rec['ask']):>9.2f} "
            f"{int(rec['bid_size']):>8d} {int(rec['ask_size']):>8d}"
        )
    return "\n".join(lines)
