"""TAQ-style file input/output.

The paper's Table II shows the raw quote schema: Timestamp, Symbol, Bid
Price, Ask Price, Bid Size, Ask Size.  This module reads and writes that
schema as CSV (the "Custom TAQ Files" data source of Figure 1) and renders
quote batches in the Table II layout for the Table-II benchmark.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.taq.types import QUOTE_DTYPE, validate_quote_array
from repro.taq.universe import Universe
from repro.util.timeutil import MARKET_OPEN_SECONDS, seconds_to_clock

_HEADER = ["timestamp", "symbol", "bid", "ask", "bid_size", "ask_size"]


def write_taq_csv(path, quotes: np.ndarray, universe: Universe) -> None:
    """Write a quote array to ``path`` in the Table II column layout.

    Timestamps are written as wall-clock ``HH:MM:SS`` with the fractional
    second appended (TAQ itself is second-stamped; we keep the fraction so
    a round-trip is lossless).
    """
    validate_quote_array(quotes, n_symbols=len(universe))
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for rec in quotes:
            t = float(rec["t"])
            frac = t - int(t)
            writer.writerow(
                [
                    f"{seconds_to_clock(t)}{f'{frac:.6f}'[1:]}",
                    universe.symbols[int(rec["symbol"])],
                    f"{float(rec['bid']):.2f}",
                    f"{float(rec['ask']):.2f}",
                    int(rec["bid_size"]),
                    int(rec["ask_size"]),
                ]
            )


def _clock_to_seconds(stamp: str) -> float:
    parts = stamp.split(":")
    if len(parts) != 3:
        raise ValueError(f"bad timestamp {stamp!r}, expected HH:MM:SS[.ffffff]")
    h, m = int(parts[0]), int(parts[1])
    s = float(parts[2])
    total = h * 3600 + m * 60 + s
    return total - MARKET_OPEN_SECONDS


def read_taq_csv(path, universe: Universe) -> np.ndarray:
    """Read a quote CSV written by :func:`write_taq_csv`.

    Symbols not present in ``universe`` raise ``KeyError`` — a file/universe
    mismatch is configuration error, not data to be silently dropped.
    """
    path = Path(path)
    rows: list[tuple] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"unexpected header {header!r} in {path}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise ValueError(f"{path}:{line_no}: expected {len(_HEADER)} fields")
            rows.append(
                (
                    _clock_to_seconds(row[0]),
                    universe.index_of(row[1]),
                    float(row[2]),
                    float(row[3]),
                    int(row[4]),
                    int(row[5]),
                )
            )
    out = np.array(rows, dtype=QUOTE_DTYPE) if rows else np.empty(0, dtype=QUOTE_DTYPE)
    validate_quote_array(out, n_symbols=len(universe))
    return out


def format_table2(quotes: np.ndarray, universe: Universe, limit: int = 12) -> str:
    """Render the first ``limit`` quotes in the paper's Table II layout."""
    validate_quote_array(quotes, n_symbols=len(universe))
    lines = [
        f"{'Timestamp':<10} {'Symbol':<7} {'Bid Price':>9} {'Ask Price':>9} "
        f"{'Bid Size':>8} {'Ask Size':>8}"
    ]
    for rec in quotes[:limit]:
        lines.append(
            f"{seconds_to_clock(float(rec['t'])):<10} "
            f"{universe.symbols[int(rec['symbol'])]:<7} "
            f"{float(rec['bid']):>9.2f} {float(rec['ask']):>9.2f} "
            f"{int(rec['bid_size']):>8d} {int(rec['ask_size']):>8d}"
        )
    return "\n".join(lines)
