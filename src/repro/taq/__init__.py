"""TAQ market-data substrate.

The paper backtests on NYSE TAQ bid–ask quote data (61 liquid US stocks,
March 2008).  That dataset is proprietary, so this subpackage provides the
synthetic equivalent: a seeded multi-factor market simulator producing
quote streams with the features the paper's pipeline must handle —
cross-sectional correlation, transient correlation breakdowns, microstructure
noise and gross outliers — plus a TAQ-style file format matching the
paper's Table II schema, the March 2008 trading calendar and a stock
universe of 61 liquid names.
"""

from repro.taq.calendar import TradingCalendar, march_2008
from repro.taq.io import format_table2, read_taq_csv, write_taq_csv
from repro.taq.quality import QualityReport, SymbolQuality, quality_report
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.types import (
    QUOTE_DTYPE,
    Quote,
    quotes_from_records,
    quotes_to_records,
    validate_quote_array,
)
from repro.taq.universe import Universe, default_universe

__all__ = [
    "QUOTE_DTYPE",
    "QualityReport",
    "Quote",
    "SymbolQuality",
    "SyntheticMarket",
    "SyntheticMarketConfig",
    "TradingCalendar",
    "Universe",
    "default_universe",
    "format_table2",
    "march_2008",
    "quality_report",
    "quotes_from_records",
    "quotes_to_records",
    "read_taq_csv",
    "validate_quote_array",
    "write_taq_csv",
]
