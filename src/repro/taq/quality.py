"""Data-quality reporting for quote streams.

"It is well-known that the quality of high-frequency realtime stock quote
data is low and difficult to use" (paper §II) — so a production pipeline
reports what it ingests.  :func:`quality_report` summarises a day's quote
stream per symbol: volume, quote rate, spread statistics, and the share
of quotes the TCP-like filter would reject — the operational dashboard a
trading desk watches before trusting the day's correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.taq.types import validate_quote_array
from repro.taq.universe import Universe


@dataclass(frozen=True)
class SymbolQuality:
    """Ingest statistics for one symbol."""

    symbol: str
    n_quotes: int
    quotes_per_second: float
    median_spread: float
    median_spread_bps: float
    max_spread_bps: float
    crossed: int
    rejected_outlier: int

    @property
    def rejection_rate(self) -> float:
        if self.n_quotes == 0:
            return 0.0
        return (self.crossed + self.rejected_outlier) / self.n_quotes


@dataclass(frozen=True)
class QualityReport:
    """Per-symbol and stream-level ingest statistics."""

    symbols: tuple[SymbolQuality, ...]
    total_quotes: int
    session_seconds: float

    def of(self, symbol: str) -> SymbolQuality:
        for s in self.symbols:
            if s.symbol == symbol:
                return s
        raise KeyError(f"symbol {symbol!r} not in report")

    @property
    def worst_symbol(self) -> SymbolQuality:
        return max(self.symbols, key=lambda s: s.rejection_rate)

    def format(self) -> str:
        lines = [
            f"{'symbol':<7} {'quotes':>7} {'q/s':>6} {'med spread':>11} "
            f"{'med bps':>8} {'max bps':>8} {'crossed':>8} {'outliers':>9}"
        ]
        for s in self.symbols:
            lines.append(
                f"{s.symbol:<7} {s.n_quotes:>7d} {s.quotes_per_second:>6.2f} "
                f"{s.median_spread:>11.4f} {s.median_spread_bps:>8.2f} "
                f"{s.max_spread_bps:>8.1f} {s.crossed:>8d} "
                f"{s.rejected_outlier:>9d}"
            )
        lines.append(
            f"\n{self.total_quotes} quotes over {self.session_seconds:.0f}s "
            f"({self.total_quotes / max(self.session_seconds, 1e-9):.0f}/s "
            f"market-wide); worst symbol by rejection rate: "
            f"{self.worst_symbol.symbol} "
            f"({self.worst_symbol.rejection_rate:.3%})"
        )
        return "\n".join(lines)


def quality_report(
    records: np.ndarray,
    universe: Universe,
    session_seconds: float | None = None,
) -> QualityReport:
    """Summarise a chronological quote stream per symbol.

    ``session_seconds`` defaults to the stream's time span; pass the
    session length for rate statistics over the full day.
    """
    validate_quote_array(records, n_symbols=len(universe))
    if session_seconds is None:
        session_seconds = float(records["t"].max()) if records.size else 0.0
    if records.size and session_seconds <= 0:
        raise ValueError("session_seconds must be positive")

    # Count outlier rejections per symbol with the standard filter.
    crossed_mask = records["bid"] >= records["ask"]
    from repro.clean.filters import TcpLikeFilter

    filters = [TcpLikeFilter() for _ in range(len(universe))]
    rejected_by_symbol = [0] * len(universe)
    bam = 0.5 * (records["bid"] + records["ask"])
    for i in range(records.size):
        if crossed_mask[i]:
            continue
        sym = int(records["symbol"][i])
        if not filters[sym].update(float(bam[i])):
            rejected_by_symbol[sym] += 1

    symbols = []
    for idx, name in enumerate(universe.symbols):
        mask = records["symbol"] == idx
        sub = records[mask]
        n = int(sub.size)
        crossed = int(crossed_mask[mask].sum())
        rejected = rejected_by_symbol[idx]
        if n:
            spread = sub["ask"] - sub["bid"]
            mid = 0.5 * (sub["ask"] + sub["bid"])
            med_spread = float(np.median(spread))
            spread_bps = spread / mid * 1e4
            med_bps = float(np.median(spread_bps))
            max_bps = float(spread_bps.max())
        else:
            med_spread = med_bps = max_bps = 0.0
        symbols.append(
            SymbolQuality(
                symbol=name,
                n_quotes=n,
                quotes_per_second=n / session_seconds if n else 0.0,
                median_spread=med_spread,
                median_spread_bps=med_bps,
                max_spread_bps=max_bps,
                crossed=crossed,
                rejected_outlier=rejected,
            )
        )
    return QualityReport(
        symbols=tuple(symbols),
        total_quotes=int(records.size),
        session_seconds=float(session_seconds),
    )
