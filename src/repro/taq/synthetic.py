"""Synthetic high-frequency market generator.

Substitute for the paper's proprietary NYSE TAQ dataset.  The generator
produces, per trading day, a chronological stream of bid–ask quotes with the
statistical structure the paper's pipeline exists to exploit and to survive:

* **Cross-sectional correlation** — log mid-prices follow a three-layer
  factor model (market factor + sector factor + idiosyncratic noise), so
  same-sector pairs are genuinely highly correlated, like the paper's
  Exxon/Chevron or UPS/FedEx.
* **Transient correlation breakdowns** — Poisson-arriving "dislocation"
  events kick one symbol's price away from its factor value and decay
  exponentially back (an OU-style pull).  During the dislocation the pair's
  short-window correlation collapses and the spread widens, then both
  revert: exactly the divergence→retracement cycle the canonical strategy
  trades (paper §III).
* **Microstructure noise and gross outliers** — quotes arrive at random
  times with discretised (penny) prices and stochastic spreads, and a small
  fraction are corrupted the way the paper describes raw TAQ ticks being
  corrupted: human typing errors (decimal slips), electronic test quotes,
  and far-out limit orders.  These are what the TCP-like cleaning filter
  (paper §III) and the robust Maronna correlation are for.

Everything is driven by a single integer seed; (seed, day index) pairs give
independent, reproducible daily streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.taq.types import QUOTE_DTYPE
from repro.taq.universe import Universe, default_universe
from repro.util.timeutil import TRADING_SECONDS_PER_DAY, TimeGrid
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class SyntheticMarketConfig:
    """Knobs of the synthetic market.

    Volatilities are per-√second standard deviations of log-returns; the
    defaults give roughly a 3% daily market move with sector and
    idiosyncratic components of comparable order, a plausible March-2008
    regime.
    """

    #: Length of the trading session in seconds.
    trading_seconds: int = TRADING_SECONDS_PER_DAY
    #: Market-factor volatility (per √second).
    market_vol: float = 2.0e-4
    #: Sector-factor volatility (per √second).
    sector_vol: float = 1.5e-4
    #: Idiosyncratic volatility (per √second).
    idio_vol: float = 1.0e-4
    #: Uniform range for market/sector betas.
    beta_low: float = 0.8
    beta_high: float = 1.2
    #: Expected number of dislocation events per symbol per day.
    dislocations_per_day: float = 4.0
    #: Dislocation jump magnitude range (absolute log-price units).
    dislocation_low: float = 0.0015
    dislocation_high: float = 0.0050
    #: Dislocation decay time-constant range in seconds (OU pull).
    dislocation_tau_low: float = 120.0
    dislocation_tau_high: float = 600.0
    #: Typical relative bid–ask spread in basis points of the mid.
    spread_bps: float = 6.0
    #: Multiplicative half-normal noise on the spread.
    spread_noise: float = 0.3
    #: Probability that a symbol quotes within any given second.
    quote_rate: float = 0.5
    #: Fraction of quotes corrupted into outliers.
    outlier_prob: float = 5.0e-4
    #: Mean of the geometric size distribution for bid/ask lots.
    mean_size: float = 4.0

    def __post_init__(self) -> None:
        check_positive(self.trading_seconds, "trading_seconds")
        check_positive(self.market_vol, "market_vol")
        check_positive(self.sector_vol, "sector_vol")
        check_positive(self.idio_vol, "idio_vol")
        check_positive(self.beta_low, "beta_low")
        if self.beta_high < self.beta_low:
            raise ValueError("beta_high must be >= beta_low")
        if self.dislocations_per_day < 0:
            raise ValueError("dislocations_per_day must be >= 0")
        check_positive(self.dislocation_low, "dislocation_low")
        if self.dislocation_high < self.dislocation_low:
            raise ValueError("dislocation_high must be >= dislocation_low")
        check_positive(self.dislocation_tau_low, "dislocation_tau_low")
        if self.dislocation_tau_high < self.dislocation_tau_low:
            raise ValueError("dislocation_tau_high must be >= dislocation_tau_low")
        check_positive(self.spread_bps, "spread_bps")
        if self.spread_noise < 0:
            raise ValueError("spread_noise must be >= 0")
        check_probability(self.quote_rate, "quote_rate")
        if not 0 < self.quote_rate:
            raise ValueError("quote_rate must be > 0")
        check_probability(self.outlier_prob, "outlier_prob")
        check_positive(self.mean_size, "mean_size")


class SyntheticMarket:
    """Seeded multi-day quote-stream generator over a :class:`Universe`."""

    def __init__(
        self,
        universe: Universe | None = None,
        config: SyntheticMarketConfig | None = None,
        seed: int = 0,
    ):
        self.universe = universe if universe is not None else default_universe()
        self.config = config if config is not None else SyntheticMarketConfig()
        self.seed = int(seed)
        # Stable per-symbol betas, drawn once from the seed (not per day):
        # a symbol's factor loadings are a property of the stock.
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0xBE7A]))
        n = len(self.universe)
        self._beta_market = rng.uniform(self.config.beta_low, self.config.beta_high, n)
        self._beta_sector = rng.uniform(self.config.beta_low, self.config.beta_high, n)
        sectors = sorted(set(self.universe.sectors))
        self._sector_index = np.array(
            [sectors.index(s) for s in self.universe.sectors], dtype=np.int64
        )
        self._n_sectors = len(sectors)

    # -- per-day randomness -------------------------------------------------

    def _day_rng(self, day_index: int) -> np.random.Generator:
        if day_index < 0:
            raise ValueError(f"day_index must be >= 0, got {day_index}")
        return np.random.default_rng(np.random.SeedSequence([self.seed, 1 + day_index]))

    # -- mid-price paths ----------------------------------------------------

    def mid_prices(self, day_index: int) -> np.ndarray:
        """True (uncorrupted) mid prices at each second boundary.

        Returns shape ``(trading_seconds + 1, n_symbols)``; row ``t`` is the
        mid at ``t`` seconds after the open.
        """
        cfg = self.config
        rng = self._day_rng(day_index)
        n = len(self.universe)
        T = int(cfg.trading_seconds)

        market = rng.normal(0.0, cfg.market_vol, size=T)
        sector = rng.normal(0.0, cfg.sector_vol, size=(T, self._n_sectors))
        idio = rng.normal(0.0, cfg.idio_vol, size=(T, n))

        log_returns = (
            self._beta_market[None, :] * market[:, None]
            + self._beta_sector[None, :] * sector[:, self._sector_index]
            + idio
        )
        log_path = np.empty((T + 1, n))
        log_path[0] = np.log(np.asarray(self.universe.base_prices))
        np.cumsum(log_returns, axis=0, out=log_path[1:])
        log_path[1:] += log_path[0]

        log_path += self._dislocation_paths(rng, T, n)
        return np.exp(log_path)

    def _dislocation_paths(
        self, rng: np.random.Generator, T: int, n: int
    ) -> np.ndarray:
        """Sum of exponentially decaying jumps per symbol, shape (T+1, n)."""
        cfg = self.config
        z = np.zeros((T + 1, n))
        if cfg.dislocations_per_day == 0:
            return z
        counts = rng.poisson(cfg.dislocations_per_day, size=n)
        t_axis = np.arange(T + 1, dtype=float)
        for sym in range(n):
            for _ in range(counts[sym]):
                t0 = rng.integers(0, T)
                size = rng.uniform(cfg.dislocation_low, cfg.dislocation_high)
                sign = 1.0 if rng.random() < 0.5 else -1.0
                tau = rng.uniform(cfg.dislocation_tau_low, cfg.dislocation_tau_high)
                decay = np.exp(-(t_axis[t0:] - t0) / tau)
                z[t0:, sym] += sign * size * decay
        return z

    # -- quote streams --------------------------------------------------------

    def quotes(self, day_index: int, with_outliers: bool = True) -> np.ndarray:
        """Chronological quote stream for one day (structured array).

        With ``with_outliers=False`` the stream is clean — useful as the
        ground truth when testing the cleaning filter.
        """
        cfg = self.config
        rng = self._day_rng(day_index)
        mids = self.mid_prices(day_index)  # consumes the same rng draws first
        n = len(self.universe)
        T = int(cfg.trading_seconds)

        arrival = rng.random((T, n)) < cfg.quote_rate
        sec_idx, sym_idx = np.nonzero(arrival)
        m = sec_idx.size
        jitter = rng.random(m)
        t = sec_idx + jitter

        # Quote against the mid at the start of the second.
        mid = mids[sec_idx, sym_idx]
        half_spread = (
            0.5
            * mid
            * (cfg.spread_bps * 1e-4)
            * (1.0 + cfg.spread_noise * np.abs(rng.normal(size=m)))
        )
        half_spread = np.maximum(half_spread, 0.005)
        bid = np.floor((mid - half_spread) * 100.0) / 100.0
        ask = np.ceil((mid + half_spread) * 100.0) / 100.0
        bid = np.maximum(bid, 0.01)
        ask = np.maximum(ask, bid + 0.01)

        sizes_bid = 1 + rng.geometric(1.0 / cfg.mean_size, size=m)
        sizes_ask = 1 + rng.geometric(1.0 / cfg.mean_size, size=m)

        if with_outliers and cfg.outlier_prob > 0:
            bid, ask = self._corrupt(rng, bid, ask)

        order = np.argsort(t, kind="stable")
        out = np.empty(m, dtype=QUOTE_DTYPE)
        out["t"] = t[order]
        out["symbol"] = sym_idx[order]
        out["bid"] = bid[order]
        out["ask"] = ask[order]
        out["bid_size"] = sizes_bid[order]
        out["ask_size"] = sizes_ask[order]
        return out

    def _corrupt(
        self, rng: np.random.Generator, bid: np.ndarray, ask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inject the paper's three TAQ corruption modes into a quote batch."""
        m = bid.size
        bad = np.nonzero(rng.random(m) < self.config.outlier_prob)[0]
        if bad.size == 0:
            return bid, ask
        bid = bid.copy()
        ask = ask.copy()
        kind = rng.integers(0, 3, size=bad.size)
        for i, k in zip(bad, kind):
            if k == 0:
                # Human decimal slip: one side off by a factor of 10.
                if rng.random() < 0.5:
                    bid[i] = round(bid[i] * (10.0 if rng.random() < 0.5 else 0.1), 2)
                else:
                    ask[i] = round(ask[i] * (10.0 if rng.random() < 0.5 else 0.1), 2)
            elif k == 1:
                # Electronic test quote: tiny bid / huge ask.
                bid[i] = 0.01
                ask[i] = round(ask[i] * rng.uniform(5.0, 20.0), 2)
            else:
                # Far-out limit order: one side far from the market.
                if rng.random() < 0.5:
                    bid[i] = round(bid[i] * rng.uniform(0.3, 0.7), 2)
                else:
                    ask[i] = round(ask[i] * rng.uniform(1.5, 3.0), 2)
            bid[i] = max(bid[i], 0.01)
            ask[i] = max(ask[i], bid[i] + 0.01)
        return bid, ask

    # -- ground truth for tests ------------------------------------------------

    def true_bam_grid(self, day_index: int, grid: TimeGrid) -> np.ndarray:
        """True mid prices sampled at the *end* of each grid interval.

        Shape ``(grid.smax, n_symbols)``.  This is what a perfect bar
        accumulator would recover from an uncorrupted quote stream.
        """
        if grid.trading_seconds > self.config.trading_seconds:
            raise ValueError(
                f"grid session ({grid.trading_seconds}s) longer than market "
                f"session ({self.config.trading_seconds}s)"
            )
        mids = self.mid_prices(day_index)
        ends = (np.arange(grid.smax) + 1) * grid.delta_s
        return mids[ends]
