"""Quote record types.

Quotes are stored in bulk as a NumPy structured array (:data:`QUOTE_DTYPE`)
for vectorised processing — a day of TAQ data is millions of rows, so
per-row Python objects are reserved for the edges of the system (file IO,
display, tests).  :class:`Quote` is the one-row convenience view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bulk quote layout: seconds-from-open, symbol index into a Universe,
#: best bid/ask prices and sizes (sizes in round lots, as in TAQ).
QUOTE_DTYPE = np.dtype(
    [
        ("t", "f8"),
        ("symbol", "i4"),
        ("bid", "f8"),
        ("ask", "f8"),
        ("bid_size", "i4"),
        ("ask_size", "i4"),
    ]
)


@dataclass(frozen=True, slots=True)
class Quote:
    """A single bid–ask quote.

    ``t`` is seconds from the market open; ``symbol`` is an index into the
    :class:`~repro.taq.universe.Universe` that produced the quote.
    """

    t: float
    symbol: int
    bid: float
    ask: float
    bid_size: int = 1
    ask_size: int = 1

    @property
    def bam(self) -> float:
        """Bid–ask midpoint, the paper's price approximation."""
        return 0.5 * (self.bid + self.ask)

    @property
    def spread(self) -> float:
        return self.ask - self.bid


def quotes_to_records(quotes) -> np.ndarray:
    """Pack an iterable of :class:`Quote` into a structured array."""
    quotes = list(quotes)
    out = np.empty(len(quotes), dtype=QUOTE_DTYPE)
    for i, q in enumerate(quotes):
        out[i] = (q.t, q.symbol, q.bid, q.ask, q.bid_size, q.ask_size)
    return out


def quotes_from_records(records: np.ndarray) -> list[Quote]:
    """Unpack a structured array into :class:`Quote` objects."""
    if records.dtype != QUOTE_DTYPE:
        raise ValueError(f"expected QUOTE_DTYPE records, got {records.dtype}")
    return [
        Quote(
            t=float(r["t"]),
            symbol=int(r["symbol"]),
            bid=float(r["bid"]),
            ask=float(r["ask"]),
            bid_size=int(r["bid_size"]),
            ask_size=int(r["ask_size"]),
        )
        for r in records
    ]


def validate_quote_array(records: np.ndarray, n_symbols: int | None = None) -> None:
    """Sanity-check a bulk quote array; raise ``ValueError`` on violations.

    Checks dtype, chronological ordering, non-negative timestamps, positive
    prices and sizes, and (optionally) symbol indices within the universe.
    Crossed quotes (bid > ask) are *allowed* — raw TAQ data contains them
    and the cleaning stage is responsible for dealing with the fallout.
    """
    if records.dtype != QUOTE_DTYPE:
        raise ValueError(f"expected QUOTE_DTYPE records, got {records.dtype}")
    if records.size == 0:
        return
    t = records["t"]
    if np.any(t < 0):
        raise ValueError("quote timestamps must be >= 0 seconds from open")
    if np.any(np.diff(t) < 0):
        raise ValueError("quotes must be in chronological order")
    if np.any(records["bid"] <= 0) or np.any(records["ask"] <= 0):
        raise ValueError("quote prices must be positive")
    if np.any(records["bid_size"] <= 0) or np.any(records["ask_size"] <= 0):
        raise ValueError("quote sizes must be positive")
    if n_symbols is not None:
        sym = records["symbol"]
        if np.any(sym < 0) or np.any(sym >= n_symbols):
            raise ValueError(f"symbol indices must lie in [0, {n_symbols})")
