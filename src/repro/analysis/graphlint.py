"""Static validation of MarketMiner graph specs.

Operates on the plain-data :class:`repro.marketminer.graph.GraphSpec`
view (``Workflow.spec()``), so it can diagnose graphs that ``Workflow``
itself would refuse to construct — the linter's job is to report *every*
defect in a hand-written or generated spec, not to stop at the first.

Rule catalogue (all ids prefixed ``graph.``):

====================  ========  ====================================================
rule                  severity  fires when
====================  ========  ====================================================
graph.empty           error     the spec declares no components
graph.no-source       error     no component with zero input ports exists
graph.cycle           error     the component digraph contains a cycle
graph.unknown-endpoint error    an edge references an unknown component or port
graph.duplicate-edge  error     two edges share (src, src_port, dst, dst_port)
graph.missing-input   error     an input port has no inbound edge
graph.fan-in          error     inbound edges on a port exceed its declared cap
graph.fan-out         error     outbound edges on a port exceed its declared cap
graph.tag-bounds      error     an edge declares a negative MPI tag
graph.tag-collision   error     two logical edges share a placement channel
                                (src rank → dst rank) and an explicit tag
graph.rank-budget     warning   a rank's accumulated weight exceeds the budget
graph.idle-ranks      warning   the placement leaves ranks with no component
====================  ========  ====================================================

The placement-dependent rules (tag-collision, rank-budget, idle-ranks)
only run when a rank count is supplied; tag-collision additionally only
considers edges with *explicit* declared tags — default (payload-routed)
edges cannot collide by construction.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.marketminer.graph import Edge, GraphSpec, Workflow


def _edge_desc(e: Edge) -> str:
    desc = f"edge {e.src}.{e.src_port}->{e.dst}.{e.dst_port}"
    if e.tag is not None:
        desc += f" [tag {e.tag}]"
    return desc


class _Linter:
    def __init__(
        self,
        spec: GraphSpec,
        size: int | None,
        rank_budget: float | None,
    ):
        self.spec = spec
        self.size = size
        self.rank_budget = rank_budget
        self.report = DiagnosticReport()

    def _diag(
        self,
        rule: str,
        severity: Severity,
        element: str | None,
        message: str,
        hint: str | None = None,
    ) -> None:
        self.report.add(
            Diagnostic(
                rule=rule,
                severity=severity,
                location=Location(graph=self.spec.name, element=element),
                message=message,
                hint=hint,
            )
        )

    # -- structural rules -------------------------------------------------

    def check_structure(self) -> None:
        spec = self.spec
        if not spec.components:
            self._diag(
                "graph.empty", Severity.ERROR, None,
                "workflow declares no components",
            )
            return
        if not any(c.is_source for c in spec.components.values()):
            self._diag(
                "graph.no-source", Severity.ERROR, None,
                "no source component (every component has input ports)",
                hint="a workflow needs at least one generator to drive it",
            )

        g = spec.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            for cycle in nx.simple_cycles(g):
                path = " -> ".join([*cycle, cycle[0]])
                self._diag(
                    "graph.cycle", Severity.ERROR, cycle[0],
                    f"workflow contains a cycle: {path}",
                    hint="end-of-stream can never propagate through a cycle; "
                    "break it or fold the loop into one component",
                )

        self._check_edges()
        self._check_ports(g)

    def _check_edges(self) -> None:
        spec = self.spec
        seen: set[tuple[str, str, str, str]] = set()
        for e in spec.edges:
            ok = True
            for end, port_attr, kind in (
                (e.src, "output_ports", "output"),
                (e.dst, "input_ports", "input"),
            ):
                comp = spec.components.get(end)
                if comp is None:
                    self._diag(
                        "graph.unknown-endpoint", Severity.ERROR,
                        _edge_desc(e),
                        f"references unknown component {end!r}",
                    )
                    ok = False
                    continue
                port = e.src_port if kind == "output" else e.dst_port
                if port not in getattr(comp, port_attr):
                    self._diag(
                        "graph.unknown-endpoint", Severity.ERROR,
                        _edge_desc(e),
                        f"{end!r} has no {kind} port {port!r} "
                        f"(has {sorted(getattr(comp, port_attr))})",
                    )
                    ok = False
            if ok:
                if e.endpoints in seen:
                    self._diag(
                        "graph.duplicate-edge", Severity.ERROR, _edge_desc(e),
                        "duplicate edge (same endpoints already connected)",
                        hint="a duplicate edge doubles every message and EOS "
                        "token on the connection",
                    )
                seen.add(e.endpoints)
            if e.tag is not None and e.tag < 0:
                self._diag(
                    "graph.tag-bounds", Severity.ERROR, _edge_desc(e),
                    f"declared tag {e.tag} is negative",
                    hint="negative tags are reserved for collectives; "
                    "user edges must declare tags >= 0",
                )

    def _check_ports(self, g: nx.DiGraph) -> None:
        spec = self.spec
        fan_in: dict[tuple[str, str], int] = {}
        fan_out: dict[tuple[str, str], int] = {}
        for e in spec.edges:
            fan_in[(e.dst, e.dst_port)] = fan_in.get((e.dst, e.dst_port), 0) + 1
            fan_out[(e.src, e.src_port)] = (
                fan_out.get((e.src, e.src_port), 0) + 1
            )

        for name, comp in spec.components.items():
            for port in comp.input_ports:
                n = fan_in.get((name, port), 0)
                if n == 0:
                    self._diag(
                        "graph.missing-input", Severity.ERROR,
                        f"{name}.{port}",
                        "input port has no inbound edge",
                        hint="an unconnected input never sees end-of-stream, "
                        "so the component can never stop",
                    )
                cap = comp.max_fan_in.get(port)
                if cap is not None and n > cap:
                    self._diag(
                        "graph.fan-in", Severity.ERROR, f"{name}.{port}",
                        f"{n} inbound edges exceed the declared fan-in "
                        f"cap of {cap}",
                    )
            for port in comp.output_ports:
                cap = comp.max_fan_out.get(port)
                n = fan_out.get((name, port), 0)
                if cap is not None and n > cap:
                    self._diag(
                        "graph.fan-out", Severity.ERROR, f"{name}.{port}",
                        f"{n} outbound edges exceed the declared fan-out "
                        f"cap of {cap}",
                    )

        sources = [n for n, c in spec.components.items() if c.is_source]
        reachable: set[str] = set(sources)
        for src in sources:
            if src in g:
                reachable |= nx.descendants(g, src)
        for name in sorted(set(spec.components) - reachable):
            self._diag(
                "graph.unreachable", Severity.WARNING, name,
                "component is unreachable from every source",
                hint="orphaned components never run; remove them or wire "
                "them into the stream",
            )

    # -- placement-dependent rules ----------------------------------------

    def check_placement(self) -> None:
        if self.size is None or not self.spec.components:
            return
        if not nx.is_directed_acyclic_graph(self.spec.to_networkx()):
            return  # placement is undefined on a cyclic graph
        from repro.marketminer.scheduler import placement_report

        placement = placement_report(self.spec, self.size)
        for rank in placement.idle_ranks():
            self._diag(
                "graph.idle-ranks", Severity.WARNING, f"rank {rank}",
                f"placement over {self.size} rank(s) leaves rank {rank} "
                "with no component",
                hint="fewer ranks (or more components) would waste less "
                "of the allocation",
            )
        if self.rank_budget is not None:
            for rank, load in enumerate(placement.loads):
                if load > self.rank_budget:
                    names = ", ".join(placement.components_of(rank))
                    self._diag(
                        "graph.rank-budget", Severity.WARNING,
                        f"rank {rank}",
                        f"accumulated weight {load:g} exceeds the rank "
                        f"budget {self.rank_budget:g} ({names})",
                        hint="raise the rank count or rebalance component "
                        "weights",
                    )
        self._check_tag_collisions(placement.assignment)

    def _check_tag_collisions(self, assignment: dict[str, int]) -> None:
        # Two logical edges whose traffic shares a physical channel
        # (sender rank -> receiver rank) and an explicit tag cannot be
        # told apart by (source, tag) matching at the receiver.
        channels: dict[tuple[int, int, int], list[Edge]] = {}
        for e in self.spec.edges:
            if e.tag is None:
                continue
            if e.src not in assignment or e.dst not in assignment:
                continue
            key = (assignment[e.src], assignment[e.dst], e.tag)
            channels.setdefault(key, []).append(e)
        for (src_rank, dst_rank, tag), edges in sorted(channels.items()):
            if len({e.endpoints for e in edges}) < 2:
                continue
            listing = "; ".join(_edge_desc(e) for e in edges)
            self._diag(
                "graph.tag-collision", Severity.ERROR,
                f"rank {src_rank}->rank {dst_rank} tag {tag}",
                f"{len(edges)} edges share channel rank {src_rank}->"
                f"{dst_rank} with tag {tag}: {listing}",
                hint="assign distinct tags to edges that share a rank "
                "pair, or leave tags unset to use payload routing",
            )


def lint_graph(
    spec: GraphSpec | Workflow,
    size: int | None = None,
    rank_budget: float | None = None,
) -> DiagnosticReport:
    """Run every graph-lint rule over ``spec``.

    Parameters
    ----------
    spec:
        A built :class:`Workflow` or a raw :class:`GraphSpec` (possibly
        malformed — that is the point).
    size:
        Rank count to evaluate placement-dependent rules against; None
        skips them.
    rank_budget:
        Maximum accumulated component weight per rank; None disables the
        rank-budget rule.
    """
    if isinstance(spec, Workflow):
        spec = spec.spec()
    linter = _Linter(spec, size=size, rank_budget=rank_budget)
    linter.check_structure()
    linter.check_placement()
    return linter.report
