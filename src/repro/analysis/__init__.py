"""repro.analysis — DAG/comm correctness checkers and repo lint.

Three coordinated passes over the same diagnostic model:

* :mod:`repro.analysis.graphlint` — static validation of MarketMiner
  graph specs (cycles, orphans, arity, rank budgets, tag collisions);
* :mod:`repro.analysis.commcheck` + :mod:`repro.analysis.commtrace` +
  :mod:`repro.analysis.replay` — dynamic trace analysis over the MPI
  substrate (message leaks, wildcard-receive races with deterministic
  replay confirmation, collective mismatches, sync-cycle deadlocks);
* :mod:`repro.analysis.repolint` — AST rule pack the repository holds
  its own sources to;
* :mod:`repro.analysis.deepcheck` — interprocedural invariant analyzers
  (snapshot/restore state coverage, determinism hazards, emit/handle
  protocol vs. the graph spec), surfaced as ``repro analyze``.

All passes are surfaced through ``repro lint`` / ``repro analyze`` (see
:mod:`repro.cli`).
"""

from repro.analysis.commcheck import (
    Race,
    check_collectives,
    check_leaks,
    check_rank_errors,
    check_sync_cycles,
    check_timeouts,
    check_trace,
    find_wildcard_races,
)
from repro.analysis.commtrace import (
    CollectiveEvent,
    CommTrace,
    CommTracer,
    RankTrace,
    RecvEvent,
    SendEvent,
    TimeoutEvent,
    TracedRun,
    run_traced,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.analysis.deepcheck import (
    ModuleIndex,
    check_determinism,
    check_protocol,
    check_state,
    run_deepcheck,
)
from repro.analysis.graphlint import lint_graph
from repro.analysis.replay import ReplayResult, replay_race
from repro.analysis.repolint import lint_paths, lint_source, lint_tree

__all__ = [
    "CollectiveEvent",
    "CommTrace",
    "CommTracer",
    "Diagnostic",
    "DiagnosticReport",
    "Location",
    "ModuleIndex",
    "Race",
    "RankTrace",
    "RecvEvent",
    "ReplayResult",
    "SendEvent",
    "Severity",
    "TimeoutEvent",
    "TracedRun",
    "check_collectives",
    "check_determinism",
    "check_leaks",
    "check_protocol",
    "check_state",
    "check_rank_errors",
    "check_sync_cycles",
    "check_timeouts",
    "check_trace",
    "find_wildcard_races",
    "lint_graph",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "replay_race",
    "run_deepcheck",
    "run_traced",
]
