"""Deterministic replay: confirm a flagged wildcard race by forcing it.

A :class:`~repro.analysis.commcheck.Race` says "recv ordinal *k* on rank
*r* matched rank *a*, but rank *b* was a concurrent alternative".  The
confirmation re-runs the program with a schedule directive pinning that
receive onto rank *b*: if the run completes and the pinned receive did
match *b*, both outcomes are feasible and the race is real — the
MUST-style two-schedule certificate, reimplemented over this substrate's
tracer.  If the pinned run times out or errors, the alternative schedule
is infeasible in practice and the finding stays unconfirmed (the static
clock analysis over-approximated).

Replay relies on piecewise determinism: per-rank control flow up to the
pinned receive must not depend on the racy outcome itself.  Programs
whose earlier wildcard matches also race can be pinned at several
ordinals via ``extra_schedule``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.analysis.commcheck import Race
from repro.analysis.commtrace import RecvEvent, TracedRun, run_traced


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a pinned re-execution."""

    confirmed: bool
    reason: str
    run: TracedRun

    def __bool__(self) -> bool:
        return self.confirmed


def replay_race(
    fn: Callable[..., Any],
    size: int,
    race: Race,
    backend: str = "thread",
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
    extra_schedule: dict[int, dict[int, int]] | None = None,
    **backend_options: Any,
) -> ReplayResult:
    """Re-run ``fn`` with ``race``'s receive pinned to the alternative.

    ``backend_options`` are forwarded to the backend; pass a small
    ``default_timeout`` so an infeasible schedule fails fast instead of
    waiting out the full deadlock timeout.
    """
    schedule: dict[int, dict[int, int]] = {
        rank: dict(directives)
        for rank, directives in (extra_schedule or {}).items()
    }
    schedule.setdefault(race.recv_rank, {})[race.recv_ordinal] = (
        race.alternative_source
    )
    run = run_traced(
        fn,
        size,
        backend=backend,
        args=args,
        kwargs=kwargs,
        schedule=schedule,
        **backend_options,
    )
    errors = run.trace.errors()
    if errors:
        listing = "; ".join(f"rank {r}: {e}" for r, e in sorted(errors.items()))
        return ReplayResult(
            confirmed=False,
            reason=f"pinned schedule did not complete: {listing}",
            run=run,
        )
    pinned = [
        ev
        for ev in run.trace.ranks[race.recv_rank].events
        if isinstance(ev, RecvEvent) and ev.ordinal == race.recv_ordinal
    ]
    if not pinned:
        return ReplayResult(
            confirmed=False,
            reason=(
                f"rank {race.recv_rank} never reached recv ordinal "
                f"{race.recv_ordinal} under the pinned schedule"
            ),
            run=run,
        )
    got = pinned[0].matched_source
    if got != race.alternative_source:
        return ReplayResult(
            confirmed=False,
            reason=(
                f"pinned receive matched rank {got}, not the alternative "
                f"rank {race.alternative_source}"
            ),
            run=run,
        )
    return ReplayResult(
        confirmed=True,
        reason=(
            f"recv ordinal {race.recv_ordinal} on rank {race.recv_rank} "
            f"completed against rank {race.alternative_source} as well as "
            f"rank {race.matched[0]}: both schedules are feasible"
        ),
        run=run,
    )
