"""Trace recording for the dynamic comm checker.

A :class:`CommTracer` attaches to a rank's communicator through the same
no-op-when-absent seam the observability layer uses
(:meth:`repro.mpi.mailbox.MailboxComm.attach_comm_tracer`): untraced runs
pay one attribute check per send/recv.  When attached, the tracer

* stamps every outgoing payload with the sender's **vector clock** and a
  per-rank send sequence number (wrapped in :class:`TracedPayload`, which
  the receiving tracer strips before user code sees it),
* records one event per point-to-point operation and per collective
  invocation, in per-rank program order,
* optionally *replays* a recorded schedule: a directive can pin a
  specific receive (by its per-rank ordinal) onto one source, which is
  how a flagged wildcard race is confirmed (see
  :mod:`repro.analysis.replay`).

:func:`run_traced` is the harness: it runs an SPMD function under
tracing on either backend and assembles every rank's event log into a
:class:`CommTrace` for the analyses in :mod:`repro.analysis.commcheck`.
Ranks that die of an :class:`~repro.mpi.api.MpiError` (e.g. a deadlock
surfacing as ``RecvTimeout``) still contribute their partial trace —
that is precisely the run you want to analyse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.mpi.api import ANY_SOURCE, ANY_TAG, MpiError
from repro.mpi.launcher import run_spmd


class TracedPayload:
    """Wire wrapper a tracing sender puts around every payload."""

    __slots__ = ("seq", "clock", "payload")

    def __init__(self, seq: int, clock: tuple[int, ...], payload: Any):
        self.seq = seq
        self.clock = clock
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TracedPayload(seq={self.seq}, clock={self.clock})"


@dataclass(frozen=True)
class SendEvent:
    """One ``send``: recorded at the sending rank."""

    rank: int  # world rank of the sender
    idx: int  # program-order event index on that rank
    dest: int  # world rank of the destination
    tag: int
    context: tuple
    seq: int  # per-rank send sequence number (unique key with rank)
    clock: tuple[int, ...]

    @property
    def key(self) -> tuple[int, int]:
        """Globally unique send identity: (sender world rank, seq)."""
        return (self.rank, self.seq)


@dataclass(frozen=True)
class RecvEvent:
    """One matched ``recv``: recorded at the receiving rank."""

    rank: int
    idx: int
    ordinal: int  # this rank's recv-request counter (replay coordinate)
    source: int  # requested pattern, world rank or ANY_SOURCE
    tag: int  # requested pattern, or ANY_TAG
    matched_source: int  # world rank actually matched
    matched_tag: int
    matched_seq: int  # sender's seq, or -1 for an untraced sender
    context: tuple
    clock: tuple[int, ...]

    @property
    def matched_key(self) -> tuple[int, int]:
        return (self.matched_source, self.matched_seq)


@dataclass(frozen=True)
class TimeoutEvent:
    """A blocking ``recv`` that starved (RecvTimeout)."""

    rank: int
    idx: int
    ordinal: int
    source: int  # pattern, world rank or ANY_SOURCE
    tag: int
    context: tuple


@dataclass(frozen=True)
class CollectiveEvent:
    """One collective invocation entered by this rank."""

    rank: int
    idx: int
    name: str
    context: tuple


Event = SendEvent | RecvEvent | TimeoutEvent | CollectiveEvent


class CommTracer:
    """Per-rank event recorder with a vector clock.

    Implements the hook protocol the mailbox communicator calls:
    ``on_send`` / ``on_recv_request`` / ``on_recv`` / ``on_timeout`` /
    ``on_collective``.  ``schedule`` maps a recv ordinal to a forced
    world source, turning a wildcard receive deterministic on replay.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        schedule: dict[int, int] | None = None,
    ):
        self.rank = rank
        self.size = size
        self.clock = [0] * size
        self.events: list[Event] = []
        self._send_seq = 0
        self._recv_ordinal = 0
        self._pending_ordinal = 0
        self._schedule = dict(schedule or {})

    # -- hook protocol (called from repro.mpi.mailbox) ---------------------

    def on_send(self, comm, dest: int, tag: int, obj: Any) -> TracedPayload:
        self.clock[self.rank] += 1
        seq = self._send_seq
        self._send_seq += 1
        clock = tuple(self.clock)
        self.events.append(
            SendEvent(
                rank=self.rank,
                idx=len(self.events),
                dest=comm.world_rank_of(dest),
                tag=tag,
                context=comm.context,
                seq=seq,
                clock=clock,
            )
        )
        return TracedPayload(seq, clock, obj)

    def on_recv_request(self, comm, source: int, tag: int) -> tuple[int, int]:
        ordinal = self._recv_ordinal
        self._recv_ordinal += 1
        self._pending_ordinal = ordinal
        forced = self._schedule.get(ordinal)
        if forced is not None:
            try:
                source = comm.group_rank_of(forced)
            except (AttributeError, ValueError):
                pass  # directive does not apply to this communicator
        return source, tag

    def on_recv(
        self, comm, source: int, tag: int, src: int, msg_tag: int, payload: Any
    ) -> Any:
        if isinstance(payload, TracedPayload):
            seq = payload.seq
            for i, c in enumerate(payload.clock):
                if c > self.clock[i]:
                    self.clock[i] = c
            payload = payload.payload
        else:  # sender was not tracing (e.g. attached mid-run)
            seq = -1
        self.clock[self.rank] += 1
        self.events.append(
            RecvEvent(
                rank=self.rank,
                idx=len(self.events),
                ordinal=self._pending_ordinal,
                source=(
                    source if source == ANY_SOURCE else comm.world_rank_of(source)
                ),
                tag=tag,
                matched_source=comm.world_rank_of(src),
                matched_tag=msg_tag,
                matched_seq=seq,
                context=comm.context,
                clock=tuple(self.clock),
            )
        )
        return payload

    def on_timeout(self, comm, source: int, tag: int) -> None:
        self.events.append(
            TimeoutEvent(
                rank=self.rank,
                idx=len(self.events),
                ordinal=self._pending_ordinal,
                source=(
                    source if source == ANY_SOURCE else comm.world_rank_of(source)
                ),
                tag=tag,
                context=comm.context,
            )
        )

    def on_collective(self, comm, name: str) -> None:
        self.events.append(
            CollectiveEvent(
                rank=self.rank,
                idx=len(self.events),
                name=name,
                context=comm.context,
            )
        )


@dataclass
class RankTrace:
    """One rank's recorded events plus its terminal error, if any."""

    rank: int
    events: list[Event] = field(default_factory=list)
    error: str | None = None


@dataclass
class CommTrace:
    """The assembled cross-rank trace the comm checker analyses."""

    size: int
    ranks: dict[int, RankTrace]

    def events(self, kind: type | None = None) -> list[Event]:
        """All events across ranks, optionally filtered by event class."""
        out: list[Event] = []
        for rank in sorted(self.ranks):
            for ev in self.ranks[rank].events:
                if kind is None or isinstance(ev, kind):
                    out.append(ev)
        return out

    def sends(self) -> list[SendEvent]:
        return self.events(SendEvent)  # type: ignore[return-value]

    def recvs(self) -> list[RecvEvent]:
        return self.events(RecvEvent)  # type: ignore[return-value]

    def timeouts(self) -> list[TimeoutEvent]:
        return self.events(TimeoutEvent)  # type: ignore[return-value]

    def collectives(self) -> list[CollectiveEvent]:
        return self.events(CollectiveEvent)  # type: ignore[return-value]

    def errors(self) -> dict[int, str]:
        return {
            r: t.error for r, t in self.ranks.items() if t.error is not None
        }


@dataclass
class TracedRun:
    """Per-rank user results plus the assembled trace."""

    results: list[Any]
    trace: CommTrace


def _traced_main(
    comm,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    schedule: dict[int, dict[int, int]] | None,
):
    """SPMD wrapper installing a tracer around the user function.

    Module-level so the process backend can pickle it under ``spawn``
    (the user ``fn`` has the same constraint it always had).
    """
    rank_schedule = (schedule or {}).get(comm.rank)
    tracer = CommTracer(comm.rank, comm.size, schedule=rank_schedule)
    attach = getattr(comm, "attach_comm_tracer", None)
    if attach is None:
        raise TypeError(
            f"communicator {comm!r} does not support comm tracing"
        )
    attach(tracer)
    result = None
    error = None
    try:
        result = fn(comm, *args, **kwargs)
    except MpiError as exc:
        # Keep the partial trace: a deadlocked/starved rank is exactly
        # what the checker needs to see.
        error = f"{type(exc).__name__}: {exc}"
    finally:
        attach(None)
    return result, tracer.events, error


def run_traced(
    fn: Callable[..., Any],
    size: int,
    backend: str = "thread",
    args: Sequence[Any] = (),
    kwargs: dict[str, Any] | None = None,
    schedule: dict[int, dict[int, int]] | None = None,
    **backend_options: Any,
) -> TracedRun:
    """Run ``fn(comm, *args, **kwargs)`` SPMD with comm tracing attached.

    Parameters
    ----------
    schedule:
        Optional replay directives: ``{rank: {recv_ordinal: forced_source}}``
        with world-rank sources.  Replay assumes the program is piecewise
        deterministic (its control flow up to the pinned receive does not
        depend on the outcome being replayed) — the standard record/replay
        assumption.
    backend_options:
        Forwarded to the backend (e.g. ``default_timeout=5.0`` to turn a
        deadlock into a quick, analysable timeout).

    Returns a :class:`TracedRun`; ranks that raised an ``MpiError`` have
    ``None`` results and their error recorded on the trace.
    """
    outcomes = run_spmd(
        _traced_main,
        size=size,
        backend=backend,
        args=(fn, tuple(args), dict(kwargs or {}), schedule),
        **backend_options,
    )
    ranks = {}
    results = []
    for rank, (result, events, error) in enumerate(outcomes):
        ranks[rank] = RankTrace(rank=rank, events=list(events), error=error)
        results.append(result)
    return TracedRun(results=results, trace=CommTrace(size=size, ranks=ranks))
