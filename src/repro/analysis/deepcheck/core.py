"""The interprocedural AST dataflow substrate for the deepcheck analyzers.

Everything here is *bounded* static analysis: no symbolic execution, no
type inference — just the structural facts the three analyzers need,
computed from the AST and followed through a small call graph:

* :class:`ModuleIndex` — every module under a root, parsed once, with
  per-module classes, functions and import aliases;
* class method resolution (:meth:`ModuleIndex.resolved_methods`) walks
  base classes *within the index* in MRO-ish order, so analyzers see
  inherited ``snapshot()``/helpers the way the runtime does;
* a per-class **attribute-mutation model** (:func:`attr_mutations`)
  that recognises ``self.x = ...``, augmented assigns, ``del self.x``,
  ``self.x[k] = ...`` and mutating container calls (``.append``,
  ``.update``, ``.setdefault``, ...);
* bounded transitive closures over ``self``-method calls (and property
  reads), so facts established in helpers flow to the handler/snapshot
  that reaches them — the "interprocedural" in the package docstring;
* a repo-wide **call graph** (:meth:`ModuleIndex.call_graph`) with
  name-resolution limited to what is statically unambiguous: bare calls
  to same-module or ``from``-imported functions, ``self.method()``,
  ``module.function()`` through import aliases, and ``ClassName(...)``
  to ``__init__``.  :meth:`ModuleIndex.reachable_from` BFS-walks it with
  a depth bound.

The model is deliberately conservative in both directions and the
analyzers say so in their hints: what it cannot prove it either skips
(dynamic emits) or reports for a human to baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Container-method names treated as mutations of their receiver.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "add", "insert",
    "update", "setdefault", "pop", "popleft", "popitem", "clear",
    "remove", "discard", "sort", "reverse", "push",
})

#: Constructors/literals that build a mutable container.
MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
})

#: Calls whose depth is bounded when chasing helpers interprocedurally.
CALL_DEPTH_LIMIT = 8


def base_name(node: ast.expr) -> str | None:
    """The trailing identifier of a Name/Attribute chain (``a.b.c`` → c)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a dotted string, or None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def is_self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` → attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def is_mutable_ctor(node: ast.expr) -> bool:
    """Does this initialiser expression build a mutable container?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = base_name(node.func)
        return name in MUTABLE_CTORS
    return False


@dataclass
class ClassInfo:
    """One class definition as the analyzers see it."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    properties: frozenset[str] = frozenset()

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One parsed module: AST plus the lookup tables analyzers need."""

    relpath: str
    tree: ast.Module
    lines: list[str]
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: local alias -> imported module name (``import numpy as np``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name) (``from x import y [as z]``).
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)


def _index_module(relpath: str, text: str) -> ModuleInfo | None:
    try:
        tree = ast.parse(text, filename=relpath)
    except SyntaxError:
        return None
    info = ModuleInfo(relpath=relpath, tree=tree, lines=text.splitlines())
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                info.from_imports[alias.asname or alias.name] = (
                    node.module, alias.name,
                )
        elif isinstance(node, ast.FunctionDef):
            info.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            methods: dict[str, ast.FunctionDef] = {}
            props: set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    methods[stmt.name] = stmt
                    for deco in stmt.decorator_list:
                        if base_name(deco) == "property":
                            props.add(stmt.name)
            bases = tuple(
                name for name in (base_name(b) for b in node.bases) if name
            )
            info.classes[node.name] = ClassInfo(
                name=node.name, module=info, node=node, bases=bases,
                methods=methods, properties=frozenset(props),
            )
    return info


class ModuleIndex:
    """All modules under one root, parsed once, with cross-module lookup."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
        self._mro_cache: dict[tuple[str, str], tuple[ClassInfo, ...]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ModuleIndex":
        """Index in-memory sources: {reported path: module text}."""
        modules = {}
        for relpath in sorted(sources):
            info = _index_module(relpath, sources[relpath])
            if info is not None:
                modules[relpath] = info
        return cls(modules)

    @classmethod
    def from_tree(cls, root: Path) -> "ModuleIndex":
        """Index every ``*.py`` under ``root`` (paths relative to its parent)."""
        root = Path(root)
        sources = {}
        for p in sorted(root.rglob("*.py")):
            if "__pycache__" in p.parts:
                continue
            rel = str(p.relative_to(root.parent))
            sources[rel] = p.read_text(encoding="utf-8")
        return cls.from_sources(sources)

    # -- class resolution ----------------------------------------------------

    def resolve_class(
        self, name: str, near: ModuleInfo | None = None
    ) -> ClassInfo | None:
        """The class called ``name``, preferring ``near``'s own/imported one."""
        if near is not None:
            if name in near.classes:
                return near.classes[name]
            imported = near.from_imports.get(name)
            if imported is not None:
                name = imported[1]
        candidates = self.classes_by_name.get(name)
        if not candidates:
            return None
        return candidates[0]

    def mro(self, cls: ClassInfo) -> tuple[ClassInfo, ...]:
        """Linearised bases within the index (the class itself first)."""
        key = (cls.module.relpath, cls.name)
        cached = self._mro_cache.get(key)
        if cached is not None:
            return cached
        order: list[ClassInfo] = []
        seen: set[tuple[str, str]] = set()

        def visit(c: ClassInfo) -> None:
            ckey = (c.module.relpath, c.name)
            if ckey in seen:
                return
            seen.add(ckey)
            order.append(c)
            for bname in c.bases:
                b = self.resolve_class(bname, near=c.module)
                if b is not None:
                    visit(b)

        visit(cls)
        result = tuple(order)
        self._mro_cache[key] = result
        return result

    def is_component(self, cls: ClassInfo) -> bool:
        """Does the class (transitively) subclass something named Component?"""
        if cls.name == "Component":
            return False
        pending = list(cls.bases)
        seen: set[str] = set()
        while pending:
            bname = pending.pop()
            if bname in seen:
                continue
            seen.add(bname)
            if bname == "Component":
                return True
            b = self.resolve_class(bname, near=cls.module)
            if b is not None:
                pending.extend(b.bases)
        return False

    def component_classes(self) -> list[ClassInfo]:
        """Every Component subclass in the index, in deterministic order."""
        out = []
        for relpath in sorted(self.modules):
            for name in sorted(self.modules[relpath].classes):
                cls = self.modules[relpath].classes[name]
                if self.is_component(cls):
                    out.append(cls)
        return out

    def resolved_methods(
        self, cls: ClassInfo, stop_at: str | None = "Component"
    ) -> dict[str, tuple[ast.FunctionDef, ClassInfo]]:
        """Method table after inheritance: name → (def, defining class).

        ``stop_at`` names a root base whose methods are *excluded* (the
        abstract ``Component`` defaults don't count as implementations).
        """
        table: dict[str, tuple[ast.FunctionDef, ClassInfo]] = {}
        for c in self.mro(cls):
            if stop_at is not None and c.name == stop_at:
                continue
            for mname, fn in c.methods.items():
                table.setdefault(mname, (fn, c))
        return table

    # -- interprocedural closures over self-methods --------------------------

    def _expand(
        self,
        cls: ClassInfo,
        roots: list[str],
        collect,
        follow_property_reads: bool = False,
    ) -> None:
        """Walk ``self.m()`` calls (and optionally property reads) from
        ``roots``, invoking ``collect(fn)`` on each visited method body."""
        methods = self.resolved_methods(cls, stop_at=None)
        pending = [(name, 0) for name in roots]
        visited: set[str] = set()
        while pending:
            name, depth = pending.pop()
            if name in visited or name not in methods:
                continue
            visited.add(name)
            fn = methods[name][0]
            collect(fn)
            if depth >= CALL_DEPTH_LIMIT:
                continue
            for callee in self_method_calls(fn):
                pending.append((callee, depth + 1))
            if follow_property_reads:
                for attr in self_attr_reads(fn):
                    if attr in methods:
                        pending.append((attr, depth + 1))

    def attrs_mutated_transitive(
        self, cls: ClassInfo, roots: list[str]
    ) -> set[str]:
        """Instance attrs mutated in ``roots`` or any helper they reach."""
        out: set[str] = set()
        self._expand(cls, roots, lambda fn: out.update(attr_mutations(fn)))
        return out

    def attrs_read_transitive(
        self, cls: ClassInfo, roots: list[str]
    ) -> set[str]:
        """Instance attrs read from ``roots``, chasing helpers *and*
        properties (``self.prop`` expands to the property body's reads)."""
        out: set[str] = set()
        self._expand(
            cls, roots, lambda fn: out.update(self_attr_reads(fn)),
            follow_property_reads=True,
        )
        return out

    def attrs_assigned_transitive(
        self, cls: ClassInfo, roots: list[str]
    ) -> set[str]:
        """Instance attrs assigned in ``roots`` or any helper they reach."""
        out: set[str] = set()
        self._expand(cls, roots, lambda fn: out.update(attr_assignments(fn)))
        return out

    def init_only_methods(self, cls: ClassInfo) -> set[str]:
        """Private helpers reachable *only* from ``__init__``.

        Mutations inside them are construction wiring, not run state.  A
        public method (no leading underscore) is assumed externally
        callable and never init-only.
        """
        methods = self.resolved_methods(cls, stop_at=None)
        callers: dict[str, set[str]] = {name: set() for name in methods}
        for name, (fn, _owner) in methods.items():
            for callee in self_method_calls(fn):
                if callee in callers:
                    callers[callee].add(name)
        init_only = set()
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in init_only or name == "__init__":
                    continue
                if not name.startswith("_") or name.startswith("__"):
                    continue
                callsites = callers[name]
                if callsites and callsites <= ({"__init__"} | init_only):
                    init_only.add(name)
                    changed = True
        return init_only

    # -- call graph / reachability -------------------------------------------

    def call_graph(self) -> dict[str, set[str]]:
        """Static call edges between ``module.py::qualname`` nodes."""
        edges: dict[str, set[str]] = {}
        for relpath in sorted(self.modules):
            mod = self.modules[relpath]
            for fname, fn in mod.functions.items():
                edges[f"{relpath}::{fname}"] = self._callees(mod, None, fn)
            for cname, cls in mod.classes.items():
                for mname, fn in cls.methods.items():
                    edges[f"{relpath}::{cname}.{mname}"] = self._callees(
                        mod, cls, fn
                    )
        return edges

    def _callees(
        self, mod: ModuleInfo, cls: ClassInfo | None, fn: ast.FunctionDef
    ) -> set[str]:
        out: set[str] = set()

        def add_function(target_mod: ModuleInfo, name: str) -> None:
            if name in target_mod.functions:
                out.add(f"{target_mod.relpath}::{name}")
            elif name in target_mod.classes:
                out.add(f"{target_mod.relpath}::{name}.__init__")

        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
                if name in mod.from_imports:
                    src_mod, original = mod.from_imports[name]
                    target = self._module_by_name(src_mod)
                    if target is not None:
                        add_function(target, original)
                else:
                    add_function(mod, name)
                    resolved = self.resolve_class(name, near=mod)
                    if resolved is not None and name in mod.from_imports:
                        pass
            elif isinstance(func, ast.Attribute):
                owner = func.value
                if isinstance(owner, ast.Name) and owner.id == "self":
                    if cls is not None:
                        table = self.resolved_methods(cls, stop_at=None)
                        hit = table.get(func.attr)
                        if hit is not None:
                            _fn, owner_cls = hit
                            out.add(
                                f"{owner_cls.module.relpath}::"
                                f"{owner_cls.name}.{func.attr}"
                            )
                elif isinstance(owner, ast.Name):
                    alias = mod.module_aliases.get(owner.id)
                    if alias is not None:
                        target = self._module_by_name(alias)
                        if target is not None:
                            add_function(target, func.attr)
        return out

    def _module_by_name(self, dotted: str) -> ModuleInfo | None:
        """``repro.sge.scheduler`` → its ModuleInfo, when indexed."""
        tail = dotted.replace(".", "/") + ".py"
        for relpath in self.modules:
            if relpath.endswith(tail):
                return self.modules[relpath]
        return None

    def entry_points(self) -> set[str]:
        """Seed nodes for reachability: the places execution enters.

        Component handlers plus everything conventionally invoked by a
        driver: ``run*``/``main``/``simulate`` functions and methods and
        the CLI's ``_cmd_*`` handlers.
        """
        roots: set[str] = set()
        handler_names = {
            "generate", "on_message", "on_stop", "on_pause",
            "snapshot", "restore", "result",
        }
        for relpath in sorted(self.modules):
            mod = self.modules[relpath]
            for fname in mod.functions:
                if (
                    fname.startswith("run")
                    or fname.startswith("_cmd_")
                    or fname in ("main", "simulate")
                ):
                    roots.add(f"{relpath}::{fname}")
            for cname, cls in mod.classes.items():
                is_comp = self.is_component(cls)
                for mname in cls.methods:
                    if (
                        mname.startswith("run")
                        or mname in ("main", "simulate")
                        or (is_comp and mname in handler_names)
                    ):
                        roots.add(f"{relpath}::{cname}.{mname}")
        return roots

    def reachable_from(
        self, roots: set[str], depth_limit: int = 20
    ) -> set[str]:
        """BFS closure over the call graph, depth-bounded."""
        graph = self.call_graph()
        reachable = set()
        frontier = [(r, 0) for r in sorted(roots)]
        while frontier:
            node, depth = frontier.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if depth >= depth_limit:
                continue
            for callee in graph.get(node, ()):
                frontier.append((callee, depth + 1))
        return reachable


# -- per-function AST facts ---------------------------------------------------


def attr_assignments(fn: ast.FunctionDef) -> set[str]:
    """Attrs directly assigned (``self.x = ...``, aug/ann assigns)."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Tuple):
                elements = target.elts
            else:
                elements = [target]
            for el in elements:
                attr = is_self_attr(el)
                if attr is not None:
                    out.add(attr)
    return out


def attr_mutations(fn: ast.FunctionDef) -> set[str]:
    """Attrs *mutated* in one function body: assignments, ``del``,
    item writes (``self.x[k] = v``) and container-mutator calls
    (``self.x.append(...)``, ``self.x[k].update(...)``)."""
    out = attr_assignments(fn)
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, (ast.Assign, ast.Delete))
                else [node.target]
            )
            for target in targets:
                # self.x[k] = / del self.x[k] / del self.x
                if isinstance(target, ast.Subscript):
                    attr = is_self_attr(target.value)
                    if attr is not None:
                        out.add(attr)
                attr = is_self_attr(target)
                if attr is not None:
                    out.add(attr)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                receiver = func.value
                # Unwrap one subscript layer: self.x[k].append(...).
                if isinstance(receiver, ast.Subscript):
                    receiver = receiver.value
                attr = is_self_attr(receiver)
                if attr is not None:
                    out.add(attr)
    return out


def self_attr_reads(fn: ast.FunctionDef) -> set[str]:
    """Attrs read (``Load`` context) anywhere in the body."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.add(node.attr)
    return out


def self_method_calls(fn: ast.FunctionDef) -> set[str]:
    """Names of ``self.<m>(...)`` calls in the body."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            attr = is_self_attr(node.func)
            if attr is not None:
                out.add(attr)
    return out


def mutable_attrs(index: ModuleIndex, cls: ClassInfo) -> set[str]:
    """Attrs that hold mutable containers: initialised to one in
    ``__init__`` (or an init-only helper), or hit by a mutator call."""
    methods = index.resolved_methods(cls, stop_at=None)
    out: set[str] = set()
    init_scope = {"__init__"} | index.init_only_methods(cls)
    for name in init_scope:
        hit = methods.get(name)
        if hit is None:
            continue
        for node in ast.walk(hit[0]):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = is_self_attr(target)
                    if attr is not None and is_mutable_ctor(node.value):
                        out.add(attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = is_self_attr(node.target)
                if attr is not None and is_mutable_ctor(node.value):
                    out.add(attr)
    for name, (fn, _owner) in methods.items():
        if name in ("__init__", "restore"):
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    attr = is_self_attr(func.value)
                    if attr is not None:
                        out.add(attr)
    return out


def ordered_dict_attrs(cls: ClassInfo) -> set[str]:
    """Attrs initialised to an ``OrderedDict`` in the class's own
    ``__init__`` — their ``popitem`` is FIFO/LIFO-deterministic."""
    fn = cls.methods.get("__init__")
    if fn is None:
        return set()
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if (
                isinstance(value, ast.Call)
                and base_name(value.func) == "OrderedDict"
            ):
                for target in targets:
                    attr = is_self_attr(target)
                    if attr is not None:
                        out.add(attr)
    return out
