"""deepcheck — interprocedural invariant analyzers for the pipeline.

Three analyzers over one shared AST dataflow substrate (:mod:`core`):

* :mod:`statecheck` proves the snapshot()/restore() contract covers
  every run-time-mutated attribute (recovery bitwiseness);
* :mod:`detlint` flags nondeterminism hazards — ambient clock, global
  random, OS entropy, set/dict ordering, env reads — reachability-scaled
  (cross-backend identity);
* :mod:`protocheck` cross-checks static emit/handle tag sets against a
  :class:`~repro.marketminer.graph.GraphSpec` (graph liveness).

``repro analyze`` is the CLI surface; audited-OK findings live in a
committed :mod:`baseline` file.  See DESIGN.md "Static guarantees".
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.deepcheck.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    make_baseline,
    save_baseline,
)
from repro.analysis.deepcheck.core import ModuleIndex
from repro.analysis.deepcheck.detlint import check_determinism
from repro.analysis.deepcheck.protocheck import check_protocol
from repro.analysis.deepcheck.statecheck import check_state

#: rule id -> (default severity label, one-line description).  The
#: ``repro analyze --list-rules`` output and the docs render from this.
RULES: dict[str, tuple[str, str]] = {
    "state.snapshot-missing": (
        "error",
        "instance attribute mutated at run time but never read by snapshot()",
    ),
    "state.restore-missing": (
        "error",
        "attribute captured by snapshot() but never assigned by restore()",
    ),
    "state.key-unread": (
        "error",
        "snapshot dict key never read by restore() (protocol keys exempt)",
    ),
    "state.key-unknown": (
        "error",
        "restore() reads a key snapshot() never produces",
    ),
    "state.live-alias": (
        "error",
        "checkpoint aliases live mutable state (missing copy in "
        "snapshot()/restore())",
    ),
    "det.wall-clock": (
        "error/warning",
        "wall/CPU clock read (time.*, datetime.now) — severity by "
        "reachability from pipeline entry points",
    ),
    "det.unseeded-random": (
        "error/warning",
        "global random module use, or Random()/default_rng() without a seed",
    ),
    "det.entropy": (
        "error/warning",
        "OS entropy (os.urandom, uuid1/uuid4, secrets.*)",
    ),
    "det.set-order": (
        "error/warning",
        "ordering from set iteration, dict.popitem() or id()",
    ),
    "det.env-read": (
        "error/warning",
        "os.environ / os.getenv read",
    ),
    "proto.undeclared-emit": (
        "error",
        "code emits on a port the component never declared",
    ),
    "proto.dead-edge": (
        "error",
        "edge whose source class provably never emits on its source port",
    ),
    "proto.dropped-emit": (
        "warning",
        "statically-emitted port with no outbound edge (messages discarded)",
    ),
    "proto.silent-port": (
        "warning",
        "declared output port with no edges and no emits",
    ),
    "proto.unhandled-input": (
        "error",
        "closed on_message dispatch does not cover an inbound port",
    ),
    "proto.eos-gap": (
        "error",
        "input port with no inbound edge: end-of-stream never arrives",
    ),
    "proto.wait-cycle": (
        "error",
        "cycle through live edges (blocking-recv deadlock heuristic)",
    ),
    "proto.dynamic-emit": (
        "info",
        "emit on a computed port: emit-set analysis incomplete there",
    ),
    "baseline.stale": (
        "info",
        "baseline entry no longer matching any finding (re-audit needed)",
    ),
}

ANALYZERS = ("state", "det", "proto")


def run_deepcheck(
    index: ModuleIndex,
    workflow=None,
    skip: tuple[str, ...] = (),
) -> DiagnosticReport:
    """Run all (non-skipped) analyzers over one index.

    ``workflow`` feeds protocheck: a live :class:`Workflow`, or a
    ``(GraphSpec, class_map)`` pair, or ``None`` to skip the graph
    cross-check (pure source analysis).
    """
    report = DiagnosticReport()
    if "state" not in skip:
        report.extend(check_state(index))
    if "det" not in skip:
        report.extend(check_determinism(index))
    if "proto" not in skip and workflow is not None:
        if isinstance(workflow, tuple):
            spec, class_map = workflow
            report.extend(check_protocol(spec, index, class_map))
        else:
            report.extend(check_protocol(workflow, index))
    return report


def list_rules() -> str:
    """The ``--list-rules`` text: one aligned row per rule."""
    width = max(len(r) for r in RULES)
    lines = [f"{rule:<{width}}  [{sev}]  {desc}"
             for rule, (sev, desc) in sorted(RULES.items())]
    return "\n".join(lines)


__all__ = [
    "ANALYZERS",
    "ModuleIndex",
    "RULES",
    "apply_baseline",
    "check_determinism",
    "check_protocol",
    "check_state",
    "fingerprint",
    "list_rules",
    "load_baseline",
    "make_baseline",
    "run_deepcheck",
    "save_baseline",
]
