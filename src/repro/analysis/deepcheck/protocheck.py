"""protocheck — the message plane checked against the graph contract.

PR 2's graphlint validates a :class:`GraphSpec` topologically (cycles,
orphans, fan caps).  protocheck deepens that to the *message plane*: it
extracts, per component class, the set of output ports the code can
statically emit (``ctx.emit("port", ...)`` through helper methods and
same-module helper functions), and cross-checks those tag sets against
the wiring:

* ``proto.undeclared-emit`` (ERROR) — code emits on a port the
  component never declared; the runtime raises at the first message;
* ``proto.dead-edge`` (ERROR) — an edge whose source class provably
  never emits on its source port: the downstream port only ever sees
  end-of-stream, so whatever it computes from that edge is vacuous;
* ``proto.dropped-emit`` (WARNING) — a statically-emitted, declared
  port with no outbound edge: messages are silently discarded (either
  dead code or a forgotten connection — baseline it if intentional);
* ``proto.silent-port`` (WARNING) — a declared output port with no
  edges *and* no emits: dead declaration;
* ``proto.unhandled-input`` (ERROR) — the destination's ``on_message``
  dispatches on a closed ``port == "..."`` chain that does not cover an
  inbound port: those messages fall through and are silently dropped;
* ``proto.eos-gap`` (ERROR) — an input port with no inbound edge: its
  end-of-stream never arrives, so the component's ``on_stop`` blocks
  the session forever;
* ``proto.wait-cycle`` (ERROR) — a cycle through *live* edges (edges
  that carry data per the emit analysis): a blocking-recv wait-for
  cycle, the classic pipeline deadlock heuristic;
* ``proto.dynamic-emit`` (INFO) — an emit whose port is not a string
  literal: the analysis treats the component as able to emit on any
  declared port (so dead-edge/dropped-emit stay silent for it).

Findings are graph-located (``graph::element``), so they are baselined
rather than pragma-suppressed.
"""

from __future__ import annotations

import ast

import networkx as nx

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.deepcheck.core import ClassInfo, ModuleIndex

HANDLER_METHODS = ("generate", "on_message", "on_stop", "on_pause")

_EXPAND_LIMIT = 8


def emit_ports(index: ModuleIndex, cls: ClassInfo) -> tuple[set[str], bool]:
    """(statically-emitted port names, has dynamic emits) for one class.

    Follows ``self.helper()`` calls and bare-name calls to functions in
    the same module (or ``from``-imported ones the index can resolve) —
    that is how collectors share ``_emit_by_interval``-style helpers.
    """
    methods = index.resolved_methods(cls, stop_at="Component")
    ports: set[str] = set()
    dynamic = False
    visited: set[tuple[str, str, int]] = set()
    pending: list[tuple] = []  # (function def, hosting module, depth)

    def push(fn: ast.FunctionDef, mod, depth: int) -> None:
        key = (mod.relpath, fn.name, fn.lineno)
        if key not in visited:
            visited.add(key)
            pending.append((fn, mod, depth))

    for name in HANDLER_METHODS:
        hit = methods.get(name)
        if hit is not None:
            fn, owner = hit
            push(fn, owner.module, 0)

    while pending:
        fn, mod, depth = pending.pop()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "emit":
                # ctx.emit(port, payload) — receiver is a plain name
                # (the ctx parameter), never self.<attr>.emit.
                if isinstance(func.value, ast.Name):
                    if node.args and isinstance(node.args[0], ast.Constant) \
                            and isinstance(node.args[0].value, str):
                        ports.add(node.args[0].value)
                    else:
                        dynamic = True
            if depth >= _EXPAND_LIMIT:
                continue
            if isinstance(func, ast.Attribute):
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    table = index.resolved_methods(cls, stop_at=None)
                    hit = table.get(func.attr)
                    if hit is not None:
                        push(hit[0], hit[1].module, depth + 1)
            elif isinstance(func, ast.Name):
                target_mod, fname = mod, func.id
                if func.id in mod.from_imports:
                    src_mod, original = mod.from_imports[func.id]
                    resolved = index._module_by_name(src_mod)
                    if resolved is None:
                        continue
                    target_mod, fname = resolved, original
                target_fn = target_mod.functions.get(fname)
                if target_fn is not None:
                    push(target_fn, target_mod, depth + 1)
    return ports, dynamic


def handled_ports(cls_methods) -> set[str] | None:
    """Ports a closed ``on_message`` dispatch covers, or None if open.

    "Closed" means the body (after a docstring) is a single ``if``/
    ``elif`` chain testing ``<port param> == "literal"`` whose final
    ``else`` is absent or raises.  Anything else is an open dispatch
    that we assume handles every port.
    """
    hit = cls_methods.get("on_message")
    if hit is None:
        return None
    fn = hit[0]
    params = [a.arg for a in fn.args.args if a.arg != "self"]
    if len(params) < 2:
        return None
    port_param = params[1]  # (ctx, port, payload)

    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.If):
        return None

    handled: set[str] = set()
    node: ast.stmt = body[0]
    while isinstance(node, ast.If):
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == port_param
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)
        ):
            return None  # not a pure port dispatch — treat as open
        handled.add(test.comparators[0].value)
        orelse = node.orelse
        if not orelse:
            return handled
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            node = orelse[0]
            continue
        if all(isinstance(s, ast.Raise) for s in orelse):
            return handled
        return None  # non-raising else: open dispatch
    return handled


def check_protocol(
    workflow_or_spec,
    index: ModuleIndex,
    class_map: dict[str, str] | None = None,
) -> list[Diagnostic]:
    """Cross-check a workflow's wiring against its components' code.

    ``workflow_or_spec`` is a :class:`Workflow` (class names inferred
    from the live components) or a :class:`GraphSpec` plus an explicit
    ``class_map`` of component name → class name.  Components whose
    class the index cannot resolve are skipped (their ports are treated
    as fully dynamic).
    """
    if hasattr(workflow_or_spec, "spec"):
        spec = workflow_or_spec.spec()
        class_map = {
            name: type(comp).__name__
            for name, comp in workflow_or_spec.components.items()
        }
    else:
        spec = workflow_or_spec
        class_map = class_map or {}

    out: list[Diagnostic] = []

    def diag(rule, severity, element, message, hint=None):
        out.append(Diagnostic(
            rule=rule, severity=severity,
            location=Location(graph=spec.name, element=element),
            message=message, hint=hint,
        ))

    emits: dict[str, tuple[set[str], bool]] = {}
    classes: dict[str, ClassInfo] = {}
    for name in spec.components:
        cls_name = class_map.get(name)
        cls = index.resolve_class(cls_name) if cls_name else None
        if cls is None:
            emits[name] = (set(), True)  # unknown code: assume anything
        else:
            classes[name] = cls
            emits[name] = emit_ports(index, cls)

    # -- emit side ----------------------------------------------------------
    live_edges: list = []
    for name, comp in sorted(spec.components.items()):
        static_ports, dynamic = emits[name]
        if dynamic and name in classes:
            diag(
                "proto.dynamic-emit", Severity.INFO, name,
                f"{classes[name].name}: emits on a computed port — "
                f"emit-set analysis is incomplete for this component",
            )
        for port in sorted(static_ports - set(comp.output_ports)):
            diag(
                "proto.undeclared-emit", Severity.ERROR, f"{name}.{port}",
                f"code emits on undeclared output port {port!r} "
                f"(declared: {sorted(comp.output_ports)}) — the runtime "
                f"raises at the first message",
                hint="declare the port or fix the emit",
            )
        for port in sorted(comp.output_ports):
            edges = [e for e in spec.out_edges(name) if e.src_port == port]
            emitted = port in static_ports
            if edges and not emitted and not dynamic:
                for e in edges:
                    diag(
                        "proto.dead-edge", Severity.ERROR,
                        f"{e.src}.{e.src_port}->{e.dst}.{e.dst_port}",
                        f"source {class_map.get(name, name)!r} never "
                        f"emits on {port!r}: the edge carries only "
                        f"end-of-stream",
                        hint="emit on the port or remove the edge",
                    )
            elif not edges and (emitted or dynamic):
                if emitted:
                    diag(
                        "proto.dropped-emit", Severity.WARNING,
                        f"{name}.{port}",
                        f"messages emitted on {port!r} have no edge and "
                        f"are silently discarded",
                        hint="connect the port, or baseline if the tap "
                             "is intentionally unused in this wiring",
                    )
            elif not edges and not emitted and not dynamic:
                diag(
                    "proto.silent-port", Severity.WARNING,
                    f"{name}.{port}",
                    f"declared output port {port!r} has no edges and no "
                    f"emits — dead declaration",
                    hint="drop the port from the component declaration",
                )
            if edges and (emitted or dynamic):
                live_edges.extend(edges)

    # -- receive side -------------------------------------------------------
    for name, comp in sorted(spec.components.items()):
        inbound = spec.in_edges(name)
        inbound_ports = {e.dst_port for e in inbound}
        for port in sorted(set(comp.input_ports) - inbound_ports):
            diag(
                "proto.eos-gap", Severity.ERROR, f"{name}.{port}",
                f"input port {port!r} has no inbound edge: its "
                f"end-of-stream never arrives and on_stop() blocks the "
                f"session forever",
                hint="connect the port or drop it from the declaration",
            )
        cls = classes.get(name)
        if cls is not None:
            handled = handled_ports(
                index.resolved_methods(cls, stop_at="Component")
            )
            if handled is not None:
                for port in sorted(inbound_ports - handled):
                    diag(
                        "proto.unhandled-input", Severity.ERROR,
                        f"{name}.{port}",
                        f"{cls.name}.on_message dispatches on a closed "
                        f"port chain that never handles inbound port "
                        f"{port!r} — its messages are silently dropped",
                        hint="add a dispatch arm for the port or reject "
                             "unknown ports explicitly",
                    )

    # -- liveness ------------------------------------------------------------
    g = nx.DiGraph()
    g.add_nodes_from(spec.components)
    for e in live_edges:
        if e.src in spec.components and e.dst in spec.components:
            g.add_edge(e.src, e.dst)
    try:
        cycle = nx.find_cycle(g)
    except nx.NetworkXNoCycle:
        cycle = None
    if cycle:
        path = " -> ".join([edge[0] for edge in cycle] + [cycle[0][0]])
        diag(
            "proto.wait-cycle", Severity.ERROR, path,
            "live edges form a wait-for cycle: every component in it "
            "blocks on its predecessor's messages — deadlock",
            hint="break the cycle or make one edge non-blocking",
        )
    return out
