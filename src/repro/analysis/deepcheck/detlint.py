"""detlint — nondeterminism hazards that threaten cross-backend identity.

The paper's pipeline promises bitwise-identical results across thread,
process and (simulated) MPI backends.  Anything that injects ambient
state into the dataflow breaks that promise silently.  detlint flags
the ambient-state reads statically:

* ``det.wall-clock`` — ``time.time``/``perf_counter``/``monotonic``/
  ``process_time`` (and friends), ``datetime.now``/``utcnow``/``today``;
* ``det.unseeded-random`` — module-level ``random.*`` calls (the shared
  global generator) and ``random.Random()`` / ``numpy``'s
  ``default_rng()`` / ``SeedSequence()`` constructed *without* a seed.
  Seeded constructions are deterministic and are not flagged;
* ``det.entropy`` — ``os.urandom``, ``uuid.uuid1``/``uuid4``,
  ``secrets.*``;
* ``det.set-order`` — iteration over a set literal/constructor,
  ``.popitem()`` on anything not locally provable as an ``OrderedDict``,
  and ``id()`` (CPython address-derived, varies run to run);
* ``det.env-read`` — ``os.environ`` / ``os.getenv``.

Severity is reachability-scaled: a hazard inside code reachable from a
pipeline/backtest entry point (component handlers, ``run*``/``main``/
``simulate`` functions, CLI commands) is an ERROR; elsewhere it is a
WARNING.  Audited-OK sites (telemetry timestamps in ``obs/``, scheduler
latency probes) live in the committed baseline with a justification, or
carry a ``# repro-lint: disable=det.<rule>`` pragma.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import (
    Diagnostic,
    Finding,
    Severity,
    findings_to_diagnostics,
    parse_suppressions,
)
from repro.analysis.deepcheck.core import (
    ModuleIndex,
    ModuleInfo,
    ordered_dict_attrs,
)

WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "time.strftime",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

GLOBAL_RANDOM_CALLS = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.uniform", "random.gauss", "random.normalvariate",
    "random.betavariate", "random.expovariate", "random.triangular",
    "random.getrandbits", "random.randbytes",
})

#: Constructors that are fine seeded, hazardous bare.
SEEDABLE_CTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
})

ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
})


def _resolved_call_name(mod: ModuleInfo, func: ast.expr) -> str | None:
    """The fully-qualified name of a call target, via import tables.

    ``time.perf_counter()`` under ``import time`` → ``time.perf_counter``;
    ``perf_counter()`` under ``from time import perf_counter`` → same;
    ``np.random.default_rng()`` under ``import numpy as np`` →
    ``numpy.random.default_rng``; ``datetime.now()`` under ``from
    datetime import datetime`` → ``datetime.datetime.now``.  ``None``
    for anything whose root is not a known import (method calls on local
    objects never match, so ``self.clock.time()`` is not flagged).
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    parts.reverse()
    if root in mod.module_aliases:
        return ".".join([mod.module_aliases[root]] + parts)
    if root in mod.from_imports:
        src_mod, original = mod.from_imports[root]
        return ".".join([src_mod, original] + parts)
    return None


def _call_has_args(node: ast.Call) -> bool:
    return bool(node.args) or bool(node.keywords)


class _HazardVisitor:
    """Collects hazard findings for one region (function body or module
    top level), tagging each with the region's call-graph node."""

    def __init__(self, mod: ModuleInfo, od_attrs: set[str]):
        self.mod = mod
        self.od_attrs = od_attrs
        self.findings: list[Finding] = []

    def visit_region(self, nodes: list[ast.stmt]) -> None:
        for stmt in nodes:
            for node in ast.walk(stmt):
                self._inspect(node)

    def _add(self, rule: str, line: int, message: str, hint: str) -> None:
        # Severity is resolved later, once reachability is known.
        self.findings.append(Finding(rule, Severity.ERROR, line, message, hint))

    def _inspect(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._inspect_call(node)
        elif isinstance(node, ast.For):
            self._inspect_iter(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                self._inspect_iter(gen.iter)
        elif isinstance(node, ast.Attribute):
            name = _resolved_call_name(self.mod, node)
            if name == "os.environ":
                self._add(
                    "det.env-read", node.lineno,
                    "os.environ read — environment-dependent behaviour "
                    "breaks cross-machine reproducibility",
                    "thread configuration through explicit parameters",
                )

    def _inspect_call(self, node: ast.Call) -> None:
        name = _resolved_call_name(self.mod, node.func)
        line = node.lineno
        if name is None:
            # Untyped receivers: still catch .popitem() and bare id().
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "id"
                and "id" not in self.mod.from_imports
                and "id" not in self.mod.module_aliases
            ):
                self._add(
                    "det.set-order", line,
                    "id() yields CPython object addresses — any ordering "
                    "or keying derived from it varies run to run",
                    "key on stable domain identity instead",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "popitem":
                receiver = func.value
                if (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                    and receiver.attr in self.od_attrs
                ):
                    return  # OrderedDict.popitem is FIFO/LIFO-deterministic
                self._add(
                    "det.set-order", line,
                    ".popitem() order is insertion-dependent on dict and "
                    "arbitrary on pre-3.7 semantics — ordering hazard",
                    "use an OrderedDict (init-proven) or pop an explicit "
                    "key",
                )
            return
        if name in WALL_CLOCK_CALLS:
            self._add(
                "det.wall-clock", line,
                f"{name}() reads the wall/CPU clock — values differ "
                f"across runs and backends",
                "use the session's virtual clock, or baseline if this "
                "is telemetry that never feeds results",
            )
        elif name in GLOBAL_RANDOM_CALLS:
            self._add(
                "det.unseeded-random", line,
                f"{name}() uses the shared global generator — seeding "
                f"order varies with import/execution order",
                "construct a seeded random.Random(seed) and thread it "
                "through",
            )
        elif name in SEEDABLE_CTORS:
            if not _call_has_args(node):
                self._add(
                    "det.unseeded-random", line,
                    f"{name}() constructed without a seed — OS entropy "
                    f"makes every run different",
                    "pass an explicit seed",
                )
        elif name in ENTROPY_CALLS or name.startswith("secrets."):
            self._add(
                "det.entropy", line,
                f"{name}() draws OS entropy — irreproducible by design",
                "derive ids/values from seeded state instead",
            )
        elif name == "os.getenv":
            self._add(
                "det.env-read", line,
                "os.getenv read — environment-dependent behaviour breaks "
                "cross-machine reproducibility",
                "thread configuration through explicit parameters",
            )

    def _inspect_iter(self, iter_expr: ast.expr) -> None:
        hazard = False
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            hazard = True
        elif isinstance(iter_expr, ast.Call):
            func = iter_expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                hazard = True
        if hazard:
            self._add(
                "det.set-order", iter_expr.lineno,
                "iteration over a set — element order is hash-seed "
                "dependent",
                "wrap in sorted(...) before iterating",
            )


def _region_findings(
    index: ModuleIndex,
) -> list[tuple[str, str | None, Finding]]:
    """(module relpath, call-graph node or None for toplevel, finding)."""
    out: list[tuple[str, str | None, Finding]] = []
    for relpath in sorted(index.modules):
        mod = index.modules[relpath]
        # Module top level: everything outside function/class bodies plus
        # class bodies outside methods (default exprs run at import time).
        visitor = _HazardVisitor(mod, set())
        top: list[ast.stmt] = []
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            top.append(stmt)
        visitor.visit_region(top)
        out.extend((relpath, None, f) for f in visitor.findings)

        for fname, fn in mod.functions.items():
            v = _HazardVisitor(mod, set())
            v.visit_region(fn.body)
            out.extend((relpath, f"{relpath}::{fname}", f) for f in v.findings)
        for cname, cls in mod.classes.items():
            od_attrs = ordered_dict_attrs(cls)
            for mname, fn in cls.methods.items():
                v = _HazardVisitor(mod, od_attrs)
                v.visit_region(fn.body)
                node = f"{relpath}::{cname}.{mname}"
                out.extend((relpath, node, f) for f in v.findings)
    return out


def check_determinism(index: ModuleIndex) -> list[Diagnostic]:
    """Run detlint over the whole index, reachability-scaling severity."""
    regions = _region_findings(index)
    reachable = index.reachable_from(index.entry_points())
    by_module: dict[str, list[Finding]] = {}
    for relpath, node, f in regions:
        in_hot_path = node is None or node in reachable
        f.severity = Severity.ERROR if in_hot_path else Severity.WARNING
        if not in_hot_path:
            f.message += " (not reachable from any pipeline entry point)"
        by_module.setdefault(relpath, []).append(f)
    out: list[Diagnostic] = []
    for relpath in sorted(by_module):
        mod = index.modules[relpath]
        suppressed = parse_suppressions(mod.lines)
        out.extend(
            findings_to_diagnostics(by_module[relpath], relpath, suppressed)
        )
    return out
