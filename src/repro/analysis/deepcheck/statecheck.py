"""statecheck — static coverage of the snapshot()/restore() contract.

The crash-recovery invariant (recovered run bitwise-identical to the
fault-free run) holds only if every piece of run state a component
mutates round-trips through its checkpoint.  statecheck proves the
structural half of that statically, per :class:`Component` subclass:

* ``state.snapshot-missing`` — an instance attribute is mutated in run
  scope (any handler or helper reachable from one, excluding
  ``__init__`` and init-only private helpers) but never read by
  ``snapshot()`` (following helper calls and properties);
* ``state.restore-missing`` — an attribute snapshot captures is never
  re-assigned by ``restore()`` (following helper calls);
* ``state.key-unread`` — a literal key in the snapshot dict that
  ``restore()`` never reads (dead checkpoint weight), except protocol
  keys the supervisor reads externally (``watermark``);
* ``state.key-unknown`` — ``restore()`` reads a key ``snapshot()``
  never produces (KeyError on the recovery path);
* ``state.live-alias`` — the snapshot dict stores a bare reference to a
  mutable attribute, or ``restore()`` installs one without copying:
  the checkpoint then aliases live state and a later mutation (or a
  second restore attempt) corrupts it.

Classes that never override ``snapshot()`` are skipped: stateless (or
knowingly unrecoverable) components are the runtime's concern, not
statecheck's — the graph runtime rejects stateful components without
snapshots dynamically.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import (
    Diagnostic,
    Finding,
    Severity,
    findings_to_diagnostics,
    parse_suppressions,
)
from repro.analysis.deepcheck.core import (
    ClassInfo,
    ModuleIndex,
    base_name,
    is_mutable_ctor,
    is_self_attr,
    mutable_attrs,
)

#: Snapshot keys read by the *supervisor*, not by ``restore()`` — the
#: checkpoint protocol's out-of-band channel (epoch watermarks).
PROTOCOL_KEYS = frozenset({"watermark"})

#: Handler/lifecycle methods never treated as run-state mutators' roots.
_NON_RUN_METHODS = frozenset({"__init__", "snapshot", "restore"})

#: Call names that take a copy of their argument (break aliasing).
_COPY_CALLS = frozenset({
    "dict", "list", "set", "tuple", "frozenset", "sorted", "bytearray",
    "deque", "OrderedDict", "defaultdict", "Counter", "copy", "deepcopy",
})


def _is_copying(expr: ast.expr) -> bool:
    """Does this expression produce a fresh object (no aliasing)?"""
    if isinstance(expr, ast.Call):
        func = expr.func
        if base_name(func) in _COPY_CALLS:
            return True
        # self.x.copy() / state["k"].copy()
        if isinstance(func, ast.Attribute) and func.attr == "copy":
            return True
        return True  # any other call returns a new value as far as we know
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.Tuple)):
        return True
    if isinstance(expr, (ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(expr, (ast.Constant, ast.BinOp, ast.UnaryOp, ast.IfExp)):
        return True
    return False


def _snapshot_dict_items(fn: ast.FunctionDef) -> list[tuple[str, ast.expr, int]] | None:
    """(key, value expr, line) per literal key in the snapshot dict.

    Handles ``return {...}`` directly and the ``d = {...}; d["k"] = v;
    return d`` shape.  Returns ``None`` when no dict literal is visible
    (opaque snapshot — key analysis is skipped, not failed).
    """
    items: list[tuple[str, ast.expr, int]] = []
    named_dicts: dict[str, list[tuple[str, ast.expr, int]]] = {}
    saw_literal = False

    def collect(d: ast.Dict) -> list[tuple[str, ast.expr, int]]:
        out = []
        for k, v in zip(d.keys, d.values):
            if isinstance(k, ast.Constant) and isinstance(k.value, str):
                out.append((k.value, v, k.lineno))
        return out

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    named_dicts[target.id] = collect(node.value)
                    saw_literal = True
        elif isinstance(node, ast.Assign):
            # d["k"] = v onto a tracked dict
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in named_dicts
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    named_dicts[target.value.id].append(
                        (target.slice.value, node.value, target.lineno)
                    )
        elif isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Dict):
                items.extend(collect(node.value))
                saw_literal = True
            elif (
                isinstance(node.value, ast.Name)
                and node.value.id in named_dicts
            ):
                items.extend(named_dicts[node.value.id])
    if not saw_literal:
        return None
    return items


def _state_param(fn: ast.FunctionDef) -> str | None:
    """The name of restore()'s state argument (first non-self param)."""
    args = [a.arg for a in fn.args.args if a.arg != "self"]
    return args[0] if args else None


def _restore_key_reads(fn: ast.FunctionDef) -> set[str]:
    """Literal keys restore() reads: ``state["k"]``, ``.get("k")``, ``.pop("k")``."""
    param = _state_param(fn)
    if param is None:
        return set()
    out: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            out.add(node.slice.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("get", "pop")
                and isinstance(func.value, ast.Name)
                and func.value.id == param
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                out.add(node.args[0].value)
    return out


def _restore_alias_assigns(
    fn: ast.FunctionDef, mutable: set[str]
) -> list[tuple[str, int]]:
    """``self.x = state[...]`` (bare, uncopied) for mutable x."""
    param = _state_param(fn)
    if param is None:
        return []

    def is_state_ref(expr: ast.expr) -> bool:
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == param
        ):
            return True
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "get"
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == param
        ):
            return True
        return False

    out = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = is_self_attr(target)
                if attr is not None and attr in mutable:
                    if is_state_ref(node.value):
                        out.append((attr, node.lineno))
    return out


def check_class(index: ModuleIndex, cls: ClassInfo) -> list[Finding]:
    """All statecheck findings for one Component subclass."""
    methods = index.resolved_methods(cls, stop_at="Component")
    if "snapshot" not in methods:
        return []
    findings: list[Finding] = []
    snapshot_fn, snapshot_owner = methods["snapshot"]
    restore_hit = methods.get("restore")

    init_scope = _NON_RUN_METHODS | index.init_only_methods(cls)
    run_roots = [m for m in index.resolved_methods(cls, stop_at=None)
                 if m not in init_scope]
    mutated = index.attrs_mutated_transitive(cls, run_roots)
    snap_reads = index.attrs_read_transitive(cls, ["snapshot"])
    mutable = mutable_attrs(index, cls)

    cls_line = cls.lineno

    for attr in sorted(mutated - snap_reads):
        findings.append(Finding(
            "state.snapshot-missing", Severity.ERROR, cls_line,
            f"{cls.name}: attribute `self.{attr}` is mutated at run time "
            f"but snapshot() never reads it — crash recovery silently "
            f"loses it",
            hint="capture it in snapshot() (copying if mutable) and "
                 "reinstall it in restore()",
        ))

    if restore_hit is not None:
        restore_fn, _ = restore_hit
        restore_assigns = index.attrs_assigned_transitive(cls, ["restore"])
        for attr in sorted((mutated & snap_reads) - restore_assigns):
            findings.append(Finding(
                "state.restore-missing", Severity.ERROR,
                restore_fn.lineno,
                f"{cls.name}: snapshot() captures `self.{attr}` but "
                f"restore() never assigns it — the recovered component "
                f"keeps its freshly-constructed value",
                hint="assign it in restore() from the state dict",
            ))

        items = _snapshot_dict_items(snapshot_fn)
        if items is not None:
            produced = {k for k, _v, _ln in items}
            consumed = _restore_key_reads(restore_fn)
            if consumed:  # opaque restore (e.g. self.__dict__.update) -> skip
                for key in sorted(produced - consumed - PROTOCOL_KEYS):
                    line = next(ln for k, _v, ln in items if k == key)
                    findings.append(Finding(
                        "state.key-unread", Severity.ERROR, line,
                        f"{cls.name}: snapshot key {key!r} is never read "
                        f"by restore() — dead checkpoint weight or a "
                        f"missed reinstall",
                        hint="read it in restore() or drop it from "
                             "snapshot() (protocol keys like 'watermark' "
                             "are exempt)",
                    ))
                for key in sorted(consumed - produced):
                    findings.append(Finding(
                        "state.key-unknown", Severity.ERROR,
                        restore_fn.lineno,
                        f"{cls.name}: restore() reads key {key!r} that "
                        f"snapshot() never produces — KeyError on the "
                        f"recovery path",
                        hint="produce it in snapshot() or drop the read",
                    ))
            for key, value, line in items:
                attr = is_self_attr(value)
                if attr is not None and attr in mutable:
                    findings.append(Finding(
                        "state.live-alias", Severity.ERROR, line,
                        f"{cls.name}: snapshot key {key!r} stores a live "
                        f"reference to mutable `self.{attr}` — later "
                        f"mutations corrupt the checkpoint",
                        hint="store a copy (dict(...)/list(...)/"
                             "copy.deepcopy) instead of the attribute "
                             "itself",
                    ))

        for attr, line in _restore_alias_assigns(restore_fn, mutable):
            findings.append(Finding(
                "state.live-alias", Severity.ERROR, line,
                f"{cls.name}: restore() installs `state[...]` into "
                f"mutable `self.{attr}` without copying — a failed "
                f"retry after restore corrupts the checkpoint",
                hint="copy the value out of the state dict "
                     "(dict(...)/list(...)/copy.deepcopy)",
            ))
    # Only report each (rule, line, message) once even when inherited
    # methods are analyzed for several subclasses of one base.
    return findings


def check_state(index: ModuleIndex) -> list[Diagnostic]:
    """Run statecheck over every Component subclass in the index."""
    by_module: dict[str, list[Finding]] = {}
    for cls in index.component_classes():
        for f in check_class(index, cls):
            by_module.setdefault(cls.module.relpath, []).append(f)
    out: list[Diagnostic] = []
    for relpath in sorted(by_module):
        mod = index.modules[relpath]
        suppressed = parse_suppressions(mod.lines)
        diags = findings_to_diagnostics(by_module[relpath], relpath, suppressed)
        seen: set[tuple] = set()
        for d in diags:
            key = (d.rule, str(d.location), d.message)
            if key not in seen:
                seen.add(key)
                out.append(d)
    return out
