"""Baseline files: audited-OK findings that stay visible but don't fail.

Some hazards are legitimate — telemetry timestamps in ``obs/``, latency
probes in schedulers, an intentionally-unwired diagnostic tap.  Those
sites are recorded in a committed JSON baseline with a one-line human
justification, and ``repro analyze --baseline`` subtracts them from the
report before deciding the exit code.

Fingerprints are *content-addressed*, not line-addressed:

* a file finding hashes ``rule | path | stripped source line text`` — so
  the entry survives the line moving (re-indentation, code above it
  changing) but **resurfaces** the moment the flagged line itself is
  edited, forcing a re-audit;
* a graph finding hashes ``rule | location | message``.

Entries whose fingerprint no longer matches any current finding are
reported as ``baseline.stale`` INFO diagnostics (visible housekeeping,
never a failure), so the baseline cannot silently rot.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.analysis.deepcheck.core import ModuleIndex

SCHEMA = "repro.analysis.baseline/v1"


def _line_text(index: ModuleIndex, path: str, line: int | None) -> str:
    mod = index.modules.get(path)
    if mod is None or line is None or not (1 <= line <= len(mod.lines)):
        return ""
    return mod.lines[line - 1].strip()


def fingerprint(diag: Diagnostic, index: ModuleIndex) -> str:
    """Stable content hash of one diagnostic (see module docstring)."""
    loc = diag.location
    if loc.path is not None:
        basis = f"{diag.rule}|{loc.path}|{_line_text(index, loc.path, loc.line)}"
    else:
        basis = f"{diag.rule}|{loc}|{diag.message}"
    return hashlib.sha1(basis.encode("utf-8")).hexdigest()


def load_baseline(path: str | Path) -> dict:
    """Parse a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return {"schema": SCHEMA, "entries": []}
    doc = json.loads(p.read_text(encoding="utf-8"))
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {doc.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    return doc


def apply_baseline(
    report: DiagnosticReport, doc: dict, index: ModuleIndex
) -> tuple[DiagnosticReport, list[dict]]:
    """Subtract baselined findings; return (kept report, stale entries).

    Stale entries are appended to the kept report as ``baseline.stale``
    INFO diagnostics so they surface without failing ``--strict``.
    """
    by_fp = {e["fingerprint"]: e for e in doc.get("entries", [])}
    used: set[str] = set()
    kept = DiagnosticReport()
    for diag in report:
        fp = fingerprint(diag, index)
        if fp in by_fp:
            used.add(fp)
        else:
            kept.add(diag)
    stale = [e for fp, e in by_fp.items() if fp not in used]
    for entry in sorted(stale, key=lambda e: (e["rule"], e["location"])):
        kept.add(Diagnostic(
            rule="baseline.stale",
            severity=Severity.INFO,
            location=Location(path="analysis baseline"),
            message=(
                f"baselined finding no longer matches: {entry['rule']} at "
                f"{entry['location']} — the flagged code changed or the "
                f"finding is gone; re-audit and refresh the baseline"
            ),
            hint="run `repro analyze --update-baseline` after re-auditing",
        ))
    return kept, stale


def make_baseline(
    report: DiagnosticReport, index: ModuleIndex, previous: dict | None = None
) -> dict:
    """Build a baseline doc covering every finding in ``report``.

    Justifications from ``previous`` are preserved for unchanged
    fingerprints; new entries get a TODO placeholder to hand-edit.
    """
    prev_just = {}
    if previous:
        prev_just = {
            e["fingerprint"]: e.get("justification", "")
            for e in previous.get("entries", [])
        }
    entries = []
    seen: set[str] = set()
    for diag in report.sorted():
        fp = fingerprint(diag, index)
        if fp in seen:
            continue
        seen.add(fp)
        entry = {
            "rule": diag.rule,
            "location": str(diag.location),
            "fingerprint": fp,
            "justification": prev_just.get(fp, "TODO: justify this entry"),
        }
        if diag.location.path is not None:
            entry["line_text"] = _line_text(
                index, diag.location.path, diag.location.line
            )
        entries.append(entry)
    entries.sort(key=lambda e: (e["rule"], e["location"]))
    return {"schema": SCHEMA, "entries": entries}


def save_baseline(doc: dict, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
