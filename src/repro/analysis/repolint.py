"""AST-based lint rules the repository holds itself to.

These are *project* rules, not general style: each one guards an
invariant another subsystem relies on.  Rule catalogue (ids prefixed
``repo.``):

===================  ========  =================================================
rule                 severity  fires when
===================  ========  =================================================
repo.wall-clock      error     a component handler (``generate`` /
                               ``on_message`` / ``on_stop``) calls wall-clock
                               time (``time.time``, ``datetime.now``, ...) —
                               handlers must use the session/grid clock so
                               replays are deterministic
repo.metric-name     warning   an obs metric name (``.counter()`` /
                               ``.gauge()`` / ``.histogram()`` / ``.timer()``
                               literal) does not follow the lowercase
                               dot-separated ``area.noun.unit`` convention
repo.bare-except     error     a bare ``except:`` clause (swallows
                               KeyboardInterrupt and hides rank failures)
repo.mutable-default error     a function parameter defaults to a mutable
                               literal (list/dict/set) or constructor
repo.mpi-bounds      error     a public ``repro.mpi`` point-to-point entry
                               point neither validates peer/tag bounds nor
                               delegates to one that does
repo.store-bounds    error     a ``repro.store`` read entry point
                               (``read_block`` / ``scan`` / ``day_quotes``)
                               neither validates its block/day/column
                               arguments nor delegates to a method that does
repo.stateful-       error     a ``Component`` subclass carries mutable
snapshot                       instance state but implements neither
                               ``snapshot()`` nor ``restore()`` — the
                               checkpoint/restart supervisor would silently
                               lose its state across a recovery
repo.obs-bounded     error     code under ``repro/obs/live/`` grows instance
                               state with ``self.<attr>.append/.extend`` where
                               ``<attr>`` is not an ``EventRing`` /
                               ``SeriesRing`` built in ``__init__`` — the live
                               plane's memory must stay bounded for
                               session-long sampling
repo.serve-bounded   error     code under ``repro/serve/`` accumulates
                               per-request/per-session state unboundedly: a
                               ``self.<attr>.append/.extend/.add`` on an attr
                               that is not a ring / capped queue / capped
                               deque, a ``Queue``/``deque`` built without a
                               positive bound, or dict-style growth with no
                               eviction (``del``/``.pop``/``.clear``) in the
                               class — a long-lived server's memory must stay
                               flat under tenant traffic
repo.public-         error     a module under ``repro/corr/`` or
docstring                      ``repro/backtest/``, or a public class /
                               function / method there, has no docstring —
                               these packages carry the scalar/batch
                               equivalence contract, which lives in prose
repo.topology-epoch  error     code under ``repro/elastic/`` other than
                               ``world.py`` imports or calls a
                               world-construction primitive (``run_spmd``,
                               backend/comm classes) directly — the elastic
                               runtime may only build, size or launch comm
                               worlds through its epoch-boundary seam, so
                               every rebuild shares one code path and the
                               resize bitwise invariant cannot fork
===================  ========  =================================================

Suppression: append ``# repro-lint: disable=<rule>[,<rule>...]`` (or
``disable=all``) to the flagged line.  Timing-loop code that samples
``time.time`` legitimately, say, carries the suppression next to the
call so the exemption is reviewable in place.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Finding,
    Location,
    Severity,
    findings_to_diagnostics,
    parse_suppressions,
)

#: Handler names that make a class "a component" for the wall-clock rule.
_HANDLER_NAMES = frozenset({"generate", "on_message", "on_stop"})

#: Attribute accesses that read the wall clock.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "localtime"),
    ("time", "ctime"),
    ("datetime", "now"),
    ("datetime", "today"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: Metric factory methods whose first literal argument is a metric name.
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer"})

#: area.noun[.unit] — lowercase dot-separated, optional [bucket] suffixes.
_METRIC_NAME_RE = re.compile(
    r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+(\[[^\]]+\])?)+$"
)
_METRIC_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_]*\.")

#: Point-to-point entry points and the bound checks that absolve them.
_P2P_METHODS = frozenset({"send", "isend", "recv", "irecv", "iprobe"})
_BOUND_CHECKS = frozenset({"_check_peer", "_check_user_tag"})

#: Store read entry points and the argument checks that absolve them
#: (``block_bounds`` counts: it validates via ``_check_block``).
_STORE_ENTRY = frozenset({"read_block", "scan", "day_quotes"})
_STORE_CHECKS = frozenset(
    {"_check_block", "_check_day", "_check_scan_args", "block_bounds"}
)


#: Back-compat alias: repolint rules now yield the shared analysis-core
#: :class:`repro.analysis.diagnostics.Finding`.
_Finding = Finding


def _check_bare_except(tree: ast.AST) -> Iterator[_Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield _Finding(
                "repo.bare-except", Severity.ERROR, node.lineno,
                "bare 'except:' swallows KeyboardInterrupt and SystemExit",
                hint="catch Exception (or something narrower) instead",
            )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray"}
    return False


def _check_mutable_defaults(tree: ast.AST) -> Iterator[_Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield _Finding(
                    "repo.mutable-default", Severity.ERROR, default.lineno,
                    f"function {node.name!r} has a mutable default argument",
                    hint="default to None and create the container in the "
                    "body",
                )


def _wall_clock_calls(body: list[ast.stmt]) -> Iterator[ast.Call]:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if (base_name, func.attr) in _WALL_CLOCK:
                yield node


def _check_wall_clock(tree: ast.AST) -> Iterator[_Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not (_HANDLER_NAMES & set(methods)):
            continue
        for name in sorted(_HANDLER_NAMES & set(methods)):
            for call in _wall_clock_calls(methods[name].body):
                yield _Finding(
                    "repo.wall-clock", Severity.ERROR, call.lineno,
                    f"component handler {node.name}.{name} reads the wall "
                    f"clock",
                    hint="handlers must be replay-deterministic: take time "
                    "from the quote/bar stream (the session clock), not "
                    "the host",
                )


def _check_metric_names(tree: ast.AST) -> Iterator[_Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _METRIC_FACTORIES:
            continue
        arg = node.args[0]
        bad = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not _METRIC_NAME_RE.match(arg.value):
                bad = arg.value
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            first = arg.values[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                if not _METRIC_PREFIX_RE.match(first.value):
                    bad = first.value + "..."
        if bad is not None:
            yield _Finding(
                "repo.metric-name", Severity.WARNING, arg.lineno,
                f"metric name {bad!r} does not follow the "
                f"'area.noun.unit' convention",
                hint="lowercase dot-separated segments, leading area "
                "prefix (e.g. 'mpi.sent.bytes')",
            )


def _raises_not_implemented(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name == "NotImplementedError":
                return True
    return False


def _check_mpi_bounds(tree: ast.AST, path: str) -> Iterator[_Finding]:
    if "repro/mpi/" not in path.replace("\\", "/"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name not in _P2P_METHODS:
                continue
            if _raises_not_implemented(stmt):
                continue  # abstract declaration, nothing to validate
            attrs = {
                n.attr for n in ast.walk(stmt) if isinstance(n, ast.Attribute)
            }
            delegates = (_P2P_METHODS - {stmt.name}) & attrs
            if _BOUND_CHECKS & attrs or delegates:
                continue
            yield _Finding(
                "repo.mpi-bounds", Severity.ERROR, stmt.lineno,
                f"MPI entry point {node.name}.{stmt.name} neither checks "
                f"peer/tag bounds nor delegates to one that does",
                hint="call self._check_peer/_check_user_tag (or delegate "
                "to a checked primitive) before touching mailboxes",
            )


def _check_store_bounds(tree: ast.AST, path: str) -> Iterator[_Finding]:
    if "repro/store/" not in path.replace("\\", "/"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name not in _STORE_ENTRY:
                continue
            if _raises_not_implemented(stmt):
                continue  # abstract declaration, nothing to validate
            attrs = {
                n.attr for n in ast.walk(stmt) if isinstance(n, ast.Attribute)
            }
            delegates = (_STORE_ENTRY - {stmt.name}) & attrs
            if _STORE_CHECKS & attrs or delegates:
                continue
            yield _Finding(
                "repo.store-bounds", Severity.ERROR, stmt.lineno,
                f"store entry point {node.name}.{stmt.name} neither checks "
                f"its block/day/column arguments nor delegates to a "
                f"method that does",
                hint="call _check_block/_check_day/_check_scan_args (or "
                "delegate to a checked entry point) before touching "
                "segment bytes",
            )


def _is_mutable_value(node: ast.expr) -> bool:
    """Is this initialiser expression a mutable container?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {
            "list", "dict", "set", "bytearray", "defaultdict", "deque",
        }
    return False


def _self_attr_targets(stmt: ast.stmt) -> Iterator[tuple[str, ast.expr | None]]:
    """(attr name, assigned value) for every ``self.<attr> = ...`` in stmt."""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, value


def _check_stateful_snapshot(tree: ast.AST) -> Iterator[_Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        is_component = any(
            (isinstance(base, ast.Name) and base.id == "Component")
            or (isinstance(base, ast.Attribute) and base.attr == "Component")
            for base in node.bases
        )
        if not is_component:
            continue
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if {"snapshot", "restore"} <= methods:
            continue
        stateful = []
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for attr, value in _self_attr_targets(stmt):
                if stmt.name == "__init__":
                    # Constructor wiring (ports, config) is fine; owning a
                    # mutable container means accumulating run state.
                    if value is not None and _is_mutable_value(value):
                        stateful.append(attr)
                else:
                    # Any post-construction self-mutation is run state.
                    stateful.append(attr)
        if not stateful:
            continue
        sample = ", ".join(sorted(set(stateful))[:4])
        yield _Finding(
            "repo.stateful-snapshot", Severity.ERROR, node.lineno,
            f"stateful component {node.name} (mutates {sample}) does not "
            f"implement both snapshot() and restore()",
            hint="implement both so checkpoint/restart recovery preserves "
            "the component's state, or suppress on the class line if the "
            "state is genuinely derivable",
        )


#: Bounded-container constructors that absolve a live-telemetry append.
_RING_TYPES = frozenset({"EventRing", "SeriesRing"})


def _ring_attrs(node: ast.ClassDef) -> set[str]:
    """Attrs assigned a ring constructor in the class's ``__init__``."""
    bounded: set[str] = set()
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name != "__init__":
            continue
        for attr, value in _self_attr_targets(stmt):
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _RING_TYPES:
                bounded.add(attr)
    return bounded


def _check_obs_bounded(tree: ast.AST, path: str) -> Iterator[_Finding]:
    if "repro/obs/live/" not in path.replace("\\", "/"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bounded = _ring_attrs(node)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for call in ast.walk(stmt):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in ("append", "extend"):
                    continue
                target = func.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if target.attr in bounded:
                    continue
                yield _Finding(
                    "repo.obs-bounded", Severity.ERROR, call.lineno,
                    f"live-telemetry state {node.name}.{target.attr} grows "
                    f"via .{func.attr}() without a ring bound",
                    hint="hold per-tick telemetry in an EventRing/SeriesRing "
                    "built in __init__ so session-long sampling stays "
                    "bounded; suppress in place only for add-once config",
                )


#: Queue constructors: bounded only with a positive ``maxsize``.
_QUEUE_TYPES = frozenset({"Queue", "LifoQueue", "PriorityQueue"})

#: Constructors that can never be bounded; serving code must not hold one.
_UNBOUNDABLE_TYPES = frozenset({"SimpleQueue"})


def _ctor_name(value: ast.expr) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _has_positive_bound(call: ast.Call, keyword: str) -> bool:
    """True when the ctor passes a bound that is not literally 0/None.

    Non-literal bounds (``maxsize=self.slots``) are accepted — the rule
    checks intent, not arithmetic.
    """
    candidates = [kw.value for kw in call.keywords if kw.arg == keyword]
    if not candidates and call.args:
        candidates = [call.args[0]]
    for value in candidates:
        if isinstance(value, ast.Constant):
            if isinstance(value.value, int) and value.value > 0:
                return True
        else:
            return True
    return False


def _evicted_attrs(node: ast.ClassDef) -> set[str]:
    """Attrs with eviction evidence: ``del self.a[...]``, ``.pop()`` etc."""
    evicted: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Delete):
            for target in sub.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == "self"
                ):
                    evicted.add(target.value.attr)
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("pop", "popitem", "popleft", "clear")
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                evicted.add(func.value.attr)
    return evicted


def _check_serve_bounded(tree: ast.AST, path: str) -> Iterator[_Finding]:
    if "repro/serve/" not in path.replace("\\", "/"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bounded = _ring_attrs(node)
        evicted = _evicted_attrs(node)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                for attr, value in _self_attr_targets(stmt):
                    name = _ctor_name(value)
                    if name is None:
                        continue
                    if name in _UNBOUNDABLE_TYPES:
                        yield _Finding(
                            "repo.serve-bounded", Severity.ERROR,
                            value.lineno,
                            f"{node.name}.{attr} is a {name}, which cannot "
                            f"be bounded",
                            hint="use queue.Queue(maxsize=N) so tenant "
                            "backlog rejects (429) instead of growing",
                        )
                    elif name in _QUEUE_TYPES:
                        if _has_positive_bound(value, "maxsize"):
                            bounded.add(attr)
                        else:
                            yield _Finding(
                                "repo.serve-bounded", Severity.ERROR,
                                value.lineno,
                                f"{node.name}.{attr} is a {name} without a "
                                f"positive maxsize",
                                hint="pass maxsize=N; an unbounded command/"
                                "work queue lets one tenant exhaust server "
                                "memory",
                            )
                    elif name == "deque":
                        if _has_positive_bound(value, "maxlen"):
                            bounded.add(attr)
            for call in ast.walk(stmt):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in ("append", "extend", "add"):
                    continue
                target = func.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if target.attr in bounded or target.attr in evicted:
                    continue
                yield _Finding(
                    "repo.serve-bounded", Severity.ERROR, call.lineno,
                    f"serving-layer state {node.name}.{target.attr} grows "
                    f"via .{func.attr}() without a bound",
                    hint="back per-request/per-session accumulation with an "
                    "EventRing/SeriesRing, a maxsize'd Queue or a maxlen'd "
                    "deque; suppress in place only for add-once config",
                )
            if stmt.name == "__init__":
                continue
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if not (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and isinstance(target.value.value, ast.Name)
                        and target.value.value.id == "self"
                    ):
                        continue
                    attr = target.value.attr
                    if attr in bounded or attr in evicted:
                        continue
                    yield _Finding(
                        "repo.serve-bounded", Severity.ERROR, sub.lineno,
                        f"serving-layer mapping {node.name}.{attr} grows "
                        f"by key without any eviction path",
                        hint="evict somewhere in the class (del/.pop/"
                        ".clear) or cap insertion; per-tenant keyed state "
                        "must not grow for the server's lifetime",
                    )


#: World-construction primitives the elastic runtime may only reach via
#: its ``world.py`` seam.  The resize protocol's bitwise invariant rests
#: on every epoch being launched the same way; a second code path that
#: builds communicators or backends directly would fork that guarantee.
_WORLD_PRIMITIVES = frozenset(
    {"run_spmd", "ThreadBackend", "ProcessBackend", "MailboxComm"}
)
_WORLD_MODULES = (
    "repro.mpi.launcher",
    "repro.mpi.inproc",
    "repro.mpi.procs",
    "repro.mpi.mailbox",
)


def _check_topology_epoch(tree: ast.Module, path: str) -> Iterator[_Finding]:
    """``repro/elastic/`` touches the comm world only through ``world.py``."""
    norm = path.replace("\\", "/")
    if "repro/elastic/" not in norm or norm.endswith("/world.py"):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module in _WORLD_MODULES:
                yield _Finding(
                    "repo.topology-epoch", Severity.ERROR, node.lineno,
                    f"elastic code imports world-construction module "
                    f"{module!r} directly",
                    hint="go through repro.elastic.world (run_epoch / "
                    "world_capacity / check_pool_size) — the epoch seam is "
                    "the only place worlds may be built or sized",
                )
            else:
                for alias in node.names:
                    if alias.name in _WORLD_PRIMITIVES:
                        yield _Finding(
                            "repo.topology-epoch", Severity.ERROR,
                            node.lineno,
                            f"elastic code imports world primitive "
                            f"{alias.name!r} directly",
                            hint="go through repro.elastic.world — the "
                            "epoch seam is the only place worlds may be "
                            "built or sized",
                        )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _WORLD_MODULES:
                    yield _Finding(
                        "repo.topology-epoch", Severity.ERROR, node.lineno,
                        f"elastic code imports world-construction module "
                        f"{alias.name!r} directly",
                        hint="go through repro.elastic.world — the epoch "
                        "seam is the only place worlds may be built or "
                        "sized",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _WORLD_PRIMITIVES:
                yield _Finding(
                    "repo.topology-epoch", Severity.ERROR, node.lineno,
                    f"elastic code calls world primitive {name}() directly",
                    hint="launch epochs via repro.elastic.world.run_epoch "
                    "so every rebuild shares one code path",
                )


#: Packages whose public API must be documented: the correlation and
#: backtest layers carry the scalar/batch bitwise-equivalence contract,
#: and that contract is stated in docstrings (see docs/performance.md).
_DOCSTRING_SCOPES = ("repro/corr/", "repro/backtest/")


def _public_defs(
    body: list[ast.stmt], prefix: str = ""
) -> Iterator[tuple[str, ast.stmt]]:
    """Public classes/functions in ``body``, plus public methods one deep."""
    for stmt in body:
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if stmt.name.startswith("_"):
            continue
        yield prefix + stmt.name, stmt
        if isinstance(stmt, ast.ClassDef):
            yield from _public_defs(stmt.body, prefix=stmt.name + ".")


def _check_public_docstring(tree: ast.Module, path: str) -> Iterator[_Finding]:
    norm = path.replace("\\", "/")
    if not any(scope in norm for scope in _DOCSTRING_SCOPES):
        return
    if ast.get_docstring(tree) is None:
        yield _Finding(
            "repo.public-docstring", Severity.ERROR, 1,
            "module has no docstring",
            hint="state what the module computes and, for corr/backtest "
            "code, how it relates to the scalar/batch equivalence "
            "contract",
        )
    for name, node in _public_defs(tree.body):
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            yield _Finding(
                "repo.public-docstring", Severity.ERROR, node.lineno,
                f"public {kind} {name!r} has no docstring",
                hint="document the public API (one line is enough for "
                "trivial accessors); prefix with '_' if it is internal",
            )


def lint_source(text: str, path: str) -> list[Diagnostic]:
    """Lint one module's source text; ``path`` is used for reporting."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="repo.syntax",
                severity=Severity.ERROR,
                location=Location(path=path, line=exc.lineno or 0),
                message=f"module does not parse: {exc.msg}",
            )
        ]
    suppressed = parse_suppressions(text.splitlines())
    findings: list[_Finding] = []
    findings.extend(_check_bare_except(tree))
    findings.extend(_check_mutable_defaults(tree))
    findings.extend(_check_wall_clock(tree))
    findings.extend(_check_metric_names(tree))
    findings.extend(_check_mpi_bounds(tree, path))
    findings.extend(_check_store_bounds(tree, path))
    findings.extend(_check_stateful_snapshot(tree))
    findings.extend(_check_obs_bounded(tree, path))
    findings.extend(_check_serve_bounded(tree, path))
    findings.extend(_check_public_docstring(tree, path))
    findings.extend(_check_topology_epoch(tree, path))

    return findings_to_diagnostics(findings, path, suppressed)


def lint_paths(paths: list[Path], root: Path | None = None) -> DiagnosticReport:
    """Lint a list of Python files; paths are reported relative to ``root``."""
    report = DiagnosticReport()
    for p in sorted(paths):
        rel = str(p.relative_to(root)) if root is not None else str(p)
        report.extend(lint_source(p.read_text(encoding="utf-8"), rel))
    return report


def lint_tree(root: Path) -> DiagnosticReport:
    """Lint every ``*.py`` under ``root`` (the repo-wide pass)."""
    root = Path(root)
    paths = [p for p in root.rglob("*.py") if "__pycache__" not in p.parts]
    return lint_paths(paths, root=root.parent)
