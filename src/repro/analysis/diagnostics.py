"""The shared diagnostic model for every analysis pass.

All three checkers — the graph linter, the dynamic comm checker and the
repo-wide AST lint — report through one vocabulary: a :class:`Diagnostic`
carries a stable rule id (``pass.rule`` form, e.g. ``graph.cycle`` or
``comm.leak``), a :class:`Severity`, a :class:`Location` naming where the
defect lives (a file line, a graph element, or a rank/event), a message,
and an optional fix hint.  ``repro lint`` renders and aggregates them
uniformly, and tests assert on rule ids instead of message text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so max() picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Exactly one "coordinate system" is populated per diagnostic: file
    locations carry ``path``/``line``; graph locations carry ``graph``
    and ``element`` (a component, edge or rank description); trace
    locations carry ``rank`` and ``event`` (a program-order event index).
    """

    path: str | None = None
    line: int | None = None
    graph: str | None = None
    element: str | None = None
    rank: int | None = None
    event: int | None = None

    def __str__(self) -> str:
        if self.path is not None:
            where = self.path if self.line is None else f"{self.path}:{self.line}"
            return where
        if self.graph is not None:
            if self.element is not None:
                return f"{self.graph}::{self.element}"
            return self.graph
        if self.rank is not None:
            if self.event is not None:
                return f"rank {self.rank} event #{self.event}"
            return f"rank {self.rank}"
        return "<unknown>"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass."""

    rule: str
    severity: Severity
    location: Location
    message: str
    hint: str | None = None

    def render(self) -> str:
        """One-line (plus optional hint line) human-readable form."""
        line = f"{self.location}: {self.severity}: {self.rule}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        """JSON-ready form (used by ``repro lint --format json``)."""
        loc = {
            k: v
            for k, v in vars(self.location).items()
            if v is not None
        }
        out = {
            "rule": self.rule,
            "severity": str(self.severity),
            "location": loc,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with summary helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    def worst(self) -> Severity | None:
        """The highest severity present, or None when clean."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Stable severity-major ordering (worst first) for rendering."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.rule, str(d.location)),
        )

    def render(self) -> str:
        """Full text report: one block per diagnostic plus a summary line."""
        lines = [d.render() for d in self.sorted()]
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        n = len(self.diagnostics)
        return (
            f"{n} diagnostic(s): {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.count(Severity.INFO)} info"
        )
