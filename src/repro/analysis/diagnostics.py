"""The shared diagnostic model for every analysis pass.

All checkers — the graph linter, the dynamic comm checker, the repo-wide
AST lint and the deepcheck analyzers — report through one vocabulary: a
:class:`Diagnostic` carries a stable rule id (``pass.rule`` form, e.g.
``graph.cycle`` or ``state.snapshot-missing``), a :class:`Severity`, a
:class:`Location` naming where the defect lives (a file line, a graph
element, or a rank/event), a message, and an optional fix hint.
``repro lint`` and ``repro analyze`` render and aggregate them uniformly,
and tests assert on rule ids instead of message text.

This module also hosts the machinery every *source-level* linter shares,
so suppression syntax and output formats are identical across repolint
and the deepcheck analyzers:

* :class:`Finding` — a pre-:class:`Diagnostic` working record (rule,
  severity, line, message, hint) that rule implementations yield;
* :func:`parse_suppressions` — the ``# repro-lint: disable=<rule>``
  pragma parser (one syntax for every linter);
* :func:`findings_to_diagnostics` — applies the pragmas and converts the
  surviving findings to located diagnostics in one deterministic order;
* :func:`report_to_json` — the ``--format json`` / ``--json`` document
  shape shared by every CLI surface.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterable


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so max() picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Exactly one "coordinate system" is populated per diagnostic: file
    locations carry ``path``/``line``; graph locations carry ``graph``
    and ``element`` (a component, edge or rank description); trace
    locations carry ``rank`` and ``event`` (a program-order event index).
    """

    path: str | None = None
    line: int | None = None
    graph: str | None = None
    element: str | None = None
    rank: int | None = None
    event: int | None = None

    def __str__(self) -> str:
        if self.path is not None:
            where = self.path if self.line is None else f"{self.path}:{self.line}"
            return where
        if self.graph is not None:
            if self.element is not None:
                return f"{self.graph}::{self.element}"
            return self.graph
        if self.rank is not None:
            if self.event is not None:
                return f"rank {self.rank} event #{self.event}"
            return f"rank {self.rank}"
        return "<unknown>"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass."""

    rule: str
    severity: Severity
    location: Location
    message: str
    hint: str | None = None

    def render(self) -> str:
        """One-line (plus optional hint line) human-readable form."""
        line = f"{self.location}: {self.severity}: {self.rule}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        """JSON-ready form (used by ``repro lint --format json``)."""
        loc = {
            k: v
            for k, v in vars(self.location).items()
            if v is not None
        }
        out = {
            "rule": self.rule,
            "severity": str(self.severity),
            "location": loc,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with summary helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    def worst(self) -> Severity | None:
        """The highest severity present, or None when clean."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Stable severity-major ordering (worst first) for rendering."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.rule, str(d.location)),
        )

    def render(self) -> str:
        """Full text report: one block per diagnostic plus a summary line."""
        lines = [d.render() for d in self.sorted()]
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        n = len(self.diagnostics)
        return (
            f"{n} diagnostic(s): {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.count(Severity.INFO)} info"
        )


# -- shared source-linter machinery -----------------------------------------

#: The one suppression pragma every source linter honours:
#: ``# repro-lint: disable=<rule>[,<rule>...]`` or ``disable=all``.
SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w.,\s-]+)")


class Finding:
    """A rule hit before it is located: what repolint/deepcheck rules yield.

    Rule implementations produce :class:`Finding` rows (line-relative,
    path-agnostic); :func:`findings_to_diagnostics` applies suppression
    pragmas and stamps the file path to produce :class:`Diagnostic` rows.
    """

    __slots__ = ("rule", "severity", "line", "message", "hint")

    def __init__(self, rule, severity, line, message, hint=None):
        self.rule = rule
        self.severity = severity
        self.line = line
        self.message = message
        self.hint = hint


def parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    out: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            out[i] = {part.strip() for part in m.group(1).split(",")}
    return out


def is_suppressed(rule: str, line: int, suppressed: dict[int, set[str]]) -> bool:
    """Does a pragma on ``line`` disable ``rule`` (or ``all``)?"""
    rules_off = suppressed.get(line, set())
    return "all" in rules_off or rule in rules_off


def findings_to_diagnostics(
    findings: Iterable[Finding],
    path: str,
    suppressed: dict[int, set[str]] | None = None,
) -> list[Diagnostic]:
    """Apply pragmas and locate findings, in deterministic (line, rule) order."""
    suppressed = suppressed or {}
    out = []
    for f in sorted(findings, key=lambda f: (f.line, f.rule, f.message)):
        if is_suppressed(f.rule, f.line, suppressed):
            continue
        out.append(
            Diagnostic(
                rule=f.rule,
                severity=f.severity,
                location=Location(path=path, line=f.line),
                message=f.message,
                hint=f.hint,
            )
        )
    return out


def report_to_json(report: DiagnosticReport, **extra) -> dict:
    """The JSON document shape shared by ``repro lint`` and ``repro analyze``."""
    doc = {
        "schema": "repro.analysis/v1",
        "diagnostics": [d.to_dict() for d in report.sorted()],
        "summary": {
            "total": len(report),
            "errors": report.errors,
            "warnings": report.warnings,
            "info": report.count(Severity.INFO),
        },
    }
    doc.update(extra)
    return doc
