"""Dynamic analyses over a recorded communication trace.

Every check consumes the :class:`~repro.analysis.commtrace.CommTrace`
produced by :func:`~repro.analysis.commtrace.run_traced` and reports
through the shared diagnostic model.  Rule catalogue (ids prefixed
``comm.``):

======================  ========  ==============================================
rule                    severity  fires when
======================  ========  ==============================================
comm.rank-error         error     a rank died of an MpiError during the run
comm.timeout            error     a blocking recv starved (RecvTimeout)
comm.leak               error     a message was sent but never received
                                  (unmatched at finalize)
comm.wildcard-race      warning   a wildcard recv (ANY_SOURCE/ANY_TAG) had a
                                  concurrent alternative sender — the match is
                                  schedule-dependent (MUST-style detection)
comm.collective-mismatch error    ranks sharing a communicator invoked a
                                  collective a different number of times
comm.sync-cycle         warning   user sends form a wait cycle under
                                  synchronous (rendezvous) semantics — the
                                  program relies on eager buffering
======================  ========  ==============================================

Race findings are also returned as structured :class:`Race` objects so
the replay harness (:mod:`repro.analysis.replay`) can re-run the program
pinned to the alternative match and confirm the nondeterminism.

The race detector uses the vector clocks stamped on every traced
message: send ``S`` is an *alternative* for recv ``R`` when ``S`` matches
``R``'s wildcard pattern, comes from a different source than the actual
match, and does not causally depend on ``R`` (``S``'s clock has not seen
``R``'s tick) — i.e. the two sends were concurrent competitors for one
receive.  Same-source alternatives are excluded: per-source FIFO makes
those deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.analysis.commtrace import (
    CommTrace,
    RecvEvent,
    SendEvent,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.mpi.api import ANY_SOURCE, ANY_TAG

#: Cap on reported sync cycles; deeply cyclic traces repeat one cause.
MAX_REPORTED_CYCLES = 10


@dataclass(frozen=True)
class Race:
    """A wildcard receive with more than one feasible match."""

    recv_rank: int
    recv_ordinal: int  # replay coordinate on that rank
    recv_idx: int  # event index (for reporting)
    source: int  # requested pattern (world rank or ANY_SOURCE)
    tag: int  # requested pattern (or ANY_TAG)
    matched: tuple[int, int]  # (world rank, seq) actually delivered
    alternative: tuple[int, int]  # (world rank, seq) that could have been

    @property
    def alternative_source(self) -> int:
        return self.alternative[0]


def _pattern(source: int, tag: int) -> str:
    s = "ANY_SOURCE" if source == ANY_SOURCE else str(source)
    t = "ANY_TAG" if tag == ANY_TAG else str(tag)
    return f"(source={s}, tag={t})"


def check_rank_errors(trace: CommTrace) -> list[Diagnostic]:
    return [
        Diagnostic(
            rule="comm.rank-error",
            severity=Severity.ERROR,
            location=Location(rank=rank),
            message=f"rank failed during the traced run: {error}",
        )
        for rank, error in sorted(trace.errors().items())
    ]


def check_timeouts(trace: CommTrace) -> list[Diagnostic]:
    return [
        Diagnostic(
            rule="comm.timeout",
            severity=Severity.ERROR,
            location=Location(rank=ev.rank, event=ev.idx),
            message=(
                f"recv {_pattern(ev.source, ev.tag)} starved "
                f"(context {ev.context})"
            ),
            hint="no matching send arrived; check tags and peer ranks of "
            "the senders this recv expected",
        )
        for ev in trace.timeouts()
    ]


def check_leaks(trace: CommTrace) -> list[Diagnostic]:
    """Sends that no recv ever consumed: message leaks at finalize."""
    matched = {r.matched_key for r in trace.recvs()}
    leaked: dict[tuple[int, int, int, tuple], int] = {}
    first: dict[tuple[int, int, int, tuple], SendEvent] = {}
    for s in trace.sends():
        if s.key in matched:
            continue
        group = (s.rank, s.dest, s.tag, s.context)
        leaked[group] = leaked.get(group, 0) + 1
        first.setdefault(group, s)
    out = []
    for group, count in sorted(leaked.items()):
        rank, dest, tag, context = group
        s = first[group]
        out.append(
            Diagnostic(
                rule="comm.leak",
                severity=Severity.ERROR,
                location=Location(rank=rank, event=s.idx),
                message=(
                    f"{count} message(s) from rank {rank} to rank {dest} "
                    f"with tag {tag} (context {context}) were sent but "
                    f"never received"
                ),
                hint="every send needs a matching recv before finalize; "
                "leaked messages hide lost data and mask deadlocks",
            )
        )
    return out


def find_wildcard_races(trace: CommTrace) -> list[Race]:
    """MUST-style wildcard-match nondeterminism detection.

    For every wildcard recv ``R`` that matched send ``M``, any send ``S``
    from a *different* source that also matches ``R``'s pattern and is
    not causally after ``R`` is a feasible alternative: the envelope
    order at the receiving mailbox decided the match, not the program.
    """
    sends_by_key = {s.key: s for s in trace.sends()}
    races: list[Race] = []
    for r in trace.recvs():
        if r.source != ANY_SOURCE and r.tag != ANY_TAG:
            continue
        matched_send = sends_by_key.get(r.matched_key)
        for s in trace.sends():
            if s.key == r.matched_key:
                continue
            if s.dest != r.rank or s.context != r.context:
                continue
            if s.rank == r.matched_source:
                continue  # per-source FIFO: deterministic, not a race
            if r.source != ANY_SOURCE and s.rank != r.source:
                continue
            if r.tag != ANY_TAG and s.tag != r.tag:
                continue
            # Causality: S is only an alternative if it has not seen R's
            # tick — otherwise R happened-before S and S could never have
            # been delivered at R.
            if s.clock[r.rank] >= r.clock[r.rank]:
                continue
            # The actual match (if traced) must be concurrent with S for
            # the order to be schedule-dependent: causally ordered sends
            # enqueue at the receiver in order, so either direction of
            # happens-before fixes the match.  With an untraced match we
            # conservatively report.
            if matched_send is not None and (
                matched_send.clock[s.rank] >= s.clock[s.rank]
                or s.clock[matched_send.rank]
                >= matched_send.clock[matched_send.rank]
            ):
                continue
            races.append(
                Race(
                    recv_rank=r.rank,
                    recv_ordinal=r.ordinal,
                    recv_idx=r.idx,
                    source=r.source,
                    tag=r.tag,
                    matched=r.matched_key,
                    alternative=s.key,
                )
            )
    return races


def _race_diagnostics(races: list[Race]) -> list[Diagnostic]:
    out = []
    for race in races:
        m_rank, m_seq = race.matched
        a_rank, a_seq = race.alternative
        out.append(
            Diagnostic(
                rule="comm.wildcard-race",
                severity=Severity.WARNING,
                location=Location(rank=race.recv_rank, event=race.recv_idx),
                message=(
                    f"wildcard recv {_pattern(race.source, race.tag)} "
                    f"matched send #{m_seq} from rank {m_rank}, but send "
                    f"#{a_seq} from rank {a_rank} was a concurrent "
                    f"alternative — the match is schedule-dependent"
                ),
                hint="name the source (or use distinct tags) if the "
                "program's result depends on which message arrives; "
                "confirm with the deterministic replay harness",
            )
        )
    return out


def check_collectives(trace: CommTrace) -> list[Diagnostic]:
    """Cross-rank agreement on collective invocation counts per context.

    Membership of the world context is every rank; for split contexts it
    is only observable as "ranks that invoked something there", so a rank
    that skipped a sub-communicator's collective entirely is attributed
    to the world-context check of the enclosing ``split`` (itself a
    collective).
    """
    # counts[context][name][rank] = invocations
    counts: dict[tuple, dict[str, dict[int, int]]] = {}
    for ev in trace.collectives():
        per_name = counts.setdefault(ev.context, {})
        per_rank = per_name.setdefault(ev.name, {})
        per_rank[ev.rank] = per_rank.get(ev.rank, 0) + 1
    out = []
    for context in sorted(counts, key=str):
        if len(context) == 1:  # the world context: all ranks participate
            members = set(range(trace.size))
        else:
            members = {
                ev.rank for ev in trace.collectives() if ev.context == context
            }
        for name, per_rank in sorted(counts[context].items()):
            by_rank = {r: per_rank.get(r, 0) for r in sorted(members)}
            if len(set(by_rank.values())) <= 1:
                continue
            listing = ", ".join(
                f"rank {r}: {n}" for r, n in by_rank.items()
            )
            out.append(
                Diagnostic(
                    rule="comm.collective-mismatch",
                    severity=Severity.ERROR,
                    location=Location(rank=min(members)),
                    message=(
                        f"collective {name!r} on context {context} was "
                        f"invoked a different number of times across "
                        f"ranks: {listing}"
                    ),
                    hint="all ranks of a communicator must invoke each "
                    "collective the same number of times, in the same "
                    "order",
                )
            )
    return out


def check_sync_cycles(trace: CommTrace) -> list[Diagnostic]:
    """Potential blocking cycles under synchronous (rendezvous) send.

    The substrate buffers eagerly so these runs complete, but the same
    program on an unbuffered MPI would deadlock: model each user send as
    blocking until its matching recv executes, and each recv as blocked
    behind every earlier operation of its rank (program order).  A cycle
    among sends then means no rank can make progress.  Collective-internal
    traffic (negative tags) is excluded — collective algorithms manage
    their own ordering.
    """
    recvs_by_match = {r.matched_key: r for r in trace.recvs()}
    user_sends = [s for s in trace.sends() if s.tag >= 0]
    by_rank: dict[int, list[SendEvent]] = {}
    for s in user_sends:
        by_rank.setdefault(s.rank, []).append(s)
    for sends in by_rank.values():
        sends.sort(key=lambda s: s.idx)

    g = nx.DiGraph()
    for s in user_sends:
        g.add_node(s.key)
    # Program order: a send waits for the previous send of its own rank.
    for sends in by_rank.values():
        for prev, nxt in zip(sends, sends[1:]):
            g.add_edge(nxt.key, prev.key)
    # Rendezvous: a send completes only when its matching recv runs, and
    # that recv runs only after the receiver's earlier sends completed.
    for s in user_sends:
        r = recvs_by_match.get(s.key)
        if r is None:
            continue  # unmatched: reported by the leak check instead
        earlier = [e for e in by_rank.get(r.rank, []) if e.idx < r.idx]
        if earlier:
            g.add_edge(s.key, earlier[-1].key)

    out = []
    send_index = {s.key: s for s in user_sends}
    for n, cycle in enumerate(nx.simple_cycles(g)):
        if n >= MAX_REPORTED_CYCLES:
            out.append(
                Diagnostic(
                    rule="comm.sync-cycle",
                    severity=Severity.WARNING,
                    location=Location(rank=-1),
                    message=(
                        f"more sync cycles exist; reporting stopped at "
                        f"{MAX_REPORTED_CYCLES}"
                    ),
                )
            )
            break
        hops = " -> ".join(
            f"rank {send_index[k].rank} send#{send_index[k].seq}"
            f"(to rank {send_index[k].dest}, tag {send_index[k].tag})"
            for k in cycle
        )
        first = send_index[cycle[0]]
        out.append(
            Diagnostic(
                rule="comm.sync-cycle",
                severity=Severity.WARNING,
                location=Location(rank=first.rank, event=first.idx),
                message=(
                    f"sends form a wait cycle under synchronous "
                    f"(rendezvous) semantics: {hops}"
                ),
                hint="the run only completed because sends are buffered; "
                "reorder send/recv (or use non-blocking receives) so no "
                "rank sends while its peer is also sending",
            )
        )
    return out


def check_trace(trace: CommTrace) -> DiagnosticReport:
    """Run every comm check over ``trace``; races are folded in as
    diagnostics (use :func:`find_wildcard_races` for the structured
    objects the replay harness consumes)."""
    report = DiagnosticReport()
    report.extend(check_rank_errors(trace))
    report.extend(check_timeouts(trace))
    report.extend(check_leaks(trace))
    report.extend(_race_diagnostics(find_wildcard_races(trace)))
    report.extend(check_collectives(trace))
    report.extend(check_sync_cycles(trace))
    return report
