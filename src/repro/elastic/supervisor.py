"""The elastic epoch loop: supervision with a *dynamic* rank pool.

This is the engine behind :func:`repro.faults.run_supervised_session`
(which delegates here).  It is a strict superset of the fixed-size
supervisor the chaos layer shipped: the same epoch/checkpoint/restart
protocol, plus two ways the pool size can change between epochs —

- **voluntary** — a :class:`~repro.elastic.plan.ResizePlan` names target
  sizes at epoch boundaries, and a live
  :class:`~repro.marketminer.session.SessionControl` can queue a resize
  at any time (applied at the next rebuild, never mid-epoch);
- **involuntary** — *crash-as-shrink*: when an epoch exhausts its
  restart budget and the :class:`~repro.faults.DegradePolicy` allows it
  (``shrink_on_crash``), the supervisor drops one rank and retries
  instead of giving up, down to ``min_ranks``.

Either way the protocol is the same five steps: drain the epoch (end-of-
stream reaches every component, so the cut is consistent), allgather the
checkpoint, tear down the comm world, rebuild at the new size (via the
:mod:`repro.elastic.world` seam — the lint-enforced chokepoint), restore
the checkpoint into the fresh components.  Because component snapshots
are deep copies, sources re-derive their stream deterministically, and
all pair shards are rank-count-independent, a rescaled session is
**bitwise-identical** to a fixed-size one — positions, signals,
correlation matrices and folded domain counters alike.  The elastic
test suite asserts exactly that on both MPI backends.

The chaos log grows two entry shapes, both deterministic:
``("resize", epoch, old, new, moved)`` with the component moves, and
``("shrink", epoch, attempt, old, new, classification)`` for a
crash-as-shrink.  Existing ``("run", ...)``/``("restart", ...)`` shapes
are unchanged, so fixed-size logs are byte-for-byte what they were.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

from repro.elastic import world
from repro.elastic.plan import ResizePlan
from repro.faults.plan import FaultPlan
from repro.faults.policy import DegradePolicy
from repro.faults.supervisor import (
    ChaosUnrecoverable,
    SupervisedRun,
    _classify_failure,
    _epochs,
    _freeze_fault_events,
    _session_smax,
    _session_sources,
)
from repro.marketminer.scheduler import WorkflowRunner
from repro.mpi.api import MpiError
from repro.mpi.topology import placement_moves


def _driver_flight(flight_dump: str | None, event: dict) -> None:
    """Append one driver-side elasticity event to the flight directory.

    Per-rank recorders die with their world; resize decisions are made
    by the driver *between* worlds, so they get their own JSONL stream
    (``driver-elastic.jsonl``).  Events carry only deterministic fields.
    """
    if flight_dump is None:
        return
    os.makedirs(flight_dump, exist_ok=True)
    path = os.path.join(flight_dump, "driver-elastic.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(event, sort_keys=True) + "\n")


def _validate_plan(
    plan: ResizePlan, n_epochs: int, backend: str
) -> dict[int, int]:
    """Pointed up-front validation: bad plans fail before any epoch runs."""
    if plan.max_epoch >= n_epochs:
        raise ValueError(
            f"resize plan names epoch {plan.max_epoch} but the session has "
            f"only {n_epochs} epoch(s); pass a smaller checkpoint_every or "
            f"an earlier boundary"
        )
    for request in plan.requests:
        world.check_pool_size(request.size, backend)
        if request.epoch > 0 and n_epochs < 2:
            raise ValueError(
                f"resize at epoch {request.epoch} needs checkpoints "
                f"(checkpoint_every) to create that boundary"
            )
    return plan.by_epoch()


def run_elastic_session(
    build: Callable[[], Any],
    size: int = 3,
    backend: str = "thread",
    plan: FaultPlan | None = None,
    checkpoint_every: int | None = None,
    max_restarts: int = 3,
    collect_stats: bool = False,
    obs_enabled: bool = False,
    obs=None,
    backend_options: dict | None = None,
    flight_dump: str | None = None,
    obs_hook=None,
    control=None,
    resize=None,
    degrade: DegradePolicy | None = None,
) -> SupervisedRun:
    """Run a Figure-1 session under supervision with an elastic pool.

    See :func:`repro.faults.run_supervised_session` for the shared
    parameters; the elastic ones are:

    ``resize``: a :class:`~repro.elastic.plan.ResizePlan` (or a single
    :class:`~repro.elastic.plan.ResizeRequest`, or an iterable of them)
    scheduling voluntary pool changes at epoch boundaries.  Validated
    up front — unknown epochs, sizes below 1 and sizes above the
    backend's capacity raise pointed ``ValueError``\\ s before anything
    runs.

    ``degrade``: a :class:`~repro.faults.DegradePolicy`; with
    ``shrink_on_crash=True``, an epoch that exhausts ``max_restarts``
    sheds one rank and retries (down to ``degrade.min_ranks``) instead
    of raising :class:`~repro.faults.ChaosUnrecoverable`.

    A :class:`~repro.marketminer.session.SessionControl` passed as
    ``control`` can also queue resizes live (``request_resize``); they
    are consumed at the next rebuild — mid-epoch requests are deferred
    to the boundary, which is the only consistent cut.
    """
    options = dict(backend_options or {})
    resize_plan = ResizePlan.of(resize)
    world.check_pool_size(size, backend)
    smax = _session_smax(build())
    epochs = _epochs(smax, checkpoint_every)
    plan_targets = _validate_plan(resize_plan, len(epochs), backend)
    metrics = obs.metrics if obs is not None and obs.enabled else None

    log: list[tuple] = []
    obs_reports: list[dict] = []
    pool_sizes: list[int] = []
    resizes: list[tuple[int, int, int]] = []
    checkpoint: dict[str, Any] | None = None
    pool = size
    attempt = 0
    restarts = 0
    checkpoints = 0
    if control is not None:
        control.note_pool(pool)

    def apply_resize(epoch: int, target: int, runner: WorkflowRunner) -> None:
        nonlocal pool
        moved = placement_moves(
            runner.rank_map(pool), runner.rank_map(target)
        )
        log.append(("resize", epoch, pool, target, moved))
        resizes.append((epoch, pool, target))
        _driver_flight(
            flight_dump,
            {
                "event": "resize", "epoch": epoch,
                "old": pool, "new": target,
                "moved": [list(m) for m in moved],
            },
        )
        if metrics is not None:
            metrics.counter("recovery.resizes").inc()
        old = pool
        pool = target
        if control is not None:
            control.resize_applied(epoch, old, pool)

    for epoch, (start, stop) in enumerate(epochs):
        final = stop == smax
        epoch_failures = 0
        epoch_started = False
        while True:
            if control is not None:
                control.gate(epoch)
            # Voluntary resizes land here — after the gate (so commands
            # drained while parked in pause are visible) and before the
            # build, which is the teardown/rebuild boundary.  The planned
            # target applies once, on the epoch's first attempt; live
            # requests apply at whichever rebuild comes next.
            target = None
            if not epoch_started:
                target = plan_targets.get(epoch)
            epoch_started = True
            if control is not None:
                requested = control.take_resize()
                if requested is not None:
                    world.check_pool_size(requested, backend)
                    target = requested
            workflow = build()
            if checkpoint is not None:
                for name, state in checkpoint.items():
                    workflow.component(name).restore(state)
            for name, comp in _session_sources(workflow).items():
                if len(epochs) > 1 or start > 0:
                    if not hasattr(comp, "set_interval_range"):
                        raise TypeError(
                            f"source {name!r} is not resumable "
                            f"(no set_interval_range); cannot checkpoint"
                        )
                    comp.set_interval_range(start, stop)
            runner = WorkflowRunner(workflow)
            if target is not None and target != pool:
                apply_resize(epoch, target, runner)
            this_attempt = attempt
            attempt += 1

            def spmd(comm, _runner=runner, _attempt=this_attempt,
                     _pause=not final):
                return _runner.run(
                    comm,
                    collect_stats=collect_stats,
                    obs_enabled=obs_enabled,
                    pause=_pause,
                    fault_plan=plan,
                    fault_attempt=_attempt,
                    flight_dump=flight_dump,
                    obs_hook=obs_hook,
                )

            try:
                results = world.run_epoch(spmd, pool, backend, options)[0]
            except MpiError as exc:
                restarts += 1
                epoch_failures += 1
                classification = _classify_failure(exc)
                log.append(("restart", epoch, this_attempt, classification))
                if control is not None:
                    control.note_restart(epoch, this_attempt)
                if metrics is not None:
                    metrics.counter("recovery.restarts").inc()
                if epoch_failures > max_restarts:
                    floor = (
                        max(1, degrade.min_ranks)
                        if degrade is not None
                        else pool
                    )
                    if (
                        degrade is not None
                        and degrade.shrink_on_crash
                        and pool > floor
                    ):
                        new = pool - 1
                        log.append(
                            ("shrink", epoch, this_attempt, pool, new,
                             classification)
                        )
                        resizes.append((epoch, pool, new))
                        _driver_flight(
                            flight_dump,
                            {
                                "event": "shrink", "epoch": epoch,
                                "attempt": this_attempt,
                                "old": pool, "new": new,
                                "failure": [list(c) for c in classification],
                            },
                        )
                        if metrics is not None:
                            metrics.counter("recovery.shrinks").inc()
                        old = pool
                        pool = new
                        epoch_failures = 0
                        if control is not None:
                            control.resize_applied(epoch, old, new)
                        continue
                    raise ChaosUnrecoverable(
                        f"epoch {epoch} (intervals [{start}, {stop})) "
                        f"failed {epoch_failures} times at pool size {pool}; "
                        f"giving up (last failure: "
                        f"{_failure_summary(classification)})",
                        failure=classification,
                        attempts=attempt,
                        restarts=restarts,
                    ) from exc
                continue

            fault_events = results.pop("_faults", None)
            log.append(
                (
                    "run", epoch, this_attempt, "ok",
                    _freeze_fault_events(fault_events),
                )
            )
            pool_sizes.append(pool)
            if "_obs" in results:
                obs_reports.append(results["_obs"])
            if final:
                return SupervisedRun(
                    results=results,
                    log=tuple(log),
                    attempts=attempt,
                    restarts=restarts,
                    checkpoints=checkpoints,
                    obs_reports=tuple(obs_reports),
                    pool_sizes=tuple(pool_sizes),
                    resizes=tuple(resizes),
                )
            checkpoint = results.pop("_snapshots")
            checkpoints += 1
            if control is not None:
                control.on_checkpoint(epoch, checkpoint)
            if metrics is not None:
                metrics.counter("recovery.checkpoints").inc()
            break

    raise AssertionError("unreachable: the final epoch returns")


def _failure_summary(classification: tuple) -> str:
    """Compact "rank N: ExcType" rendering for error messages."""
    if not classification:
        return "unknown"
    return "; ".join(
        f"rank {rank}: {exc_type}"
        for rank, exc_type, _detail in classification
    )
