"""Elastic self-healing runtime: dynamic rank pools over epoch boundaries.

The chaos layer (:mod:`repro.faults`) gave every Figure-1 component
``snapshot()/restore()`` and epoch-drained checkpoints for *involuntary*
topology changes (crash recovery).  This package reuses exactly that
machinery for *voluntary* ones: grow or shrink the rank pool at an epoch
boundary — drain the epoch, allgather the checkpoint, tear down the comm
world, rebuild it at the new size, restore — with the headline invariant
that a rescaled run is bitwise-identical to a fixed-size run.

Layout:

- :mod:`repro.elastic.plan` — :class:`ResizeRequest`/:class:`ResizePlan`,
  the declarative "grow to N at epoch E" schedule.
- :mod:`repro.elastic.world` — the *only* module here allowed to build or
  run a comm world (``repo.topology-epoch`` lint rule enforces this).
- :mod:`repro.elastic.sharding` — rank-count-independent pair sharding
  (stable hash over pair ids, never ``i % size``).
- :mod:`repro.elastic.supervisor` — the elastic epoch loop behind
  :func:`repro.faults.run_supervised_session`.
"""

from repro.elastic.plan import ResizePlan, ResizeRequest
from repro.elastic.sharding import shard_pairs, stable_shard
from repro.elastic.supervisor import run_elastic_session
from repro.elastic.world import world_capacity

__all__ = [
    "ResizePlan",
    "ResizeRequest",
    "run_elastic_session",
    "shard_pairs",
    "stable_shard",
    "world_capacity",
]
