"""Rank-count-independent pair sharding.

Placement must never leak into results.  Contiguous block splits
(:func:`repro.corr.parallel.partition_pairs`) and ``i % size`` round-
robin both assign a pair to a *different* shard when the pool resizes,
which is harmless where the merge is exact (dict-union of per-pair
series, SUM-allreduce of zero-padded partials, ``ResultStore.merged``)
but makes any placement-sensitive consumer a latent bitwise break.  The
elastic audit of the repo's ``% size``-style placement found:

- ``backtest/distributed.py`` strategy stage — moved to
  :func:`shard_pairs` (this module): the shard a pair lands on is a pure
  function of the pair id, so shard *membership* is stable under pool
  resizes and only the grouping changes.
- ``corr/parallel.py`` pair blocks — kept contiguous deliberately: the
  batch kernels gather a rank's block into cache-resident chunks, so
  contiguity is a locality win, and the block merge (dict-union /
  SUM-allreduce of disjoint zero-padded partials) is exact regardless of
  grouping.
- ``marketminer/scheduler.py`` component placement — not pair-based at
  all (weighted topological ``contract_dag``); results are placement-
  independent because components exchange the full stream regardless of
  which rank hosts them.

The hash is FNV-1a (64-bit) over the pair id's canonical text — stable
across processes, platforms and Python versions (unlike ``hash()``,
which is salted per process for strings).
"""

from __future__ import annotations

from typing import Hashable

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    return h


def stable_shard(pair: Hashable, size: int) -> int:
    """The shard (0-based) hosting ``pair`` in a ``size``-shard split.

    A pure function of ``(pair, size)``: independent of the pair list it
    came from, its position in that list, and the process computing it.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if isinstance(pair, tuple):
        key = ",".join(repr(p) for p in pair)
    else:
        key = repr(pair)
    return _fnv1a(key.encode()) % size


def shard_pairs(
    pairs: list[tuple[int, int]], size: int
) -> list[list[tuple[int, int]]]:
    """Split ``pairs`` into ``size`` shards by stable hash.

    Every pair lands in exactly one shard (the union over shards is the
    input, order preserved within each shard), and which shard is a pure
    function of the pair id — so resizing the pool regroups the shards
    without ever re-deriving a pair's identity from its position.

    Drop-in placement replacement for
    :func:`repro.corr.parallel.partition_pairs` wherever the downstream
    merge is placement-exact.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    shards: list[list[tuple[int, int]]] = [[] for _ in range(size)]
    for pair in pairs:
        shards[stable_shard(pair, size)].append(pair)
    return shards
