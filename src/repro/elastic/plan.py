"""Declarative resize schedules for supervised sessions.

A :class:`ResizeRequest` names one voluntary topology change — "run at
``size`` ranks from epoch ``epoch`` on" — and a :class:`ResizePlan` is an
ordered, validated set of them.  Epochs are the only consistent cuts of
the stream (end-of-stream drains all in-flight traffic before the
checkpoint), so they are the only points a plan can name; a request that
arrives mid-epoch through the live control channel is deferred to the
next boundary by the supervisor, never applied in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ResizeRequest:
    """Grow or shrink the rank pool to ``size`` at epoch ``epoch``.

    The request takes effect *before* the named epoch runs: its intervals
    are the first streamed by the rebuilt, resized world.  ``epoch`` 0 is
    legal and simply overrides the session's starting size.
    """

    epoch: int
    size: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(
                f"resize epoch must be >= 0, got {self.epoch}"
            )
        if self.size < 1:
            raise ValueError(
                f"cannot shrink the pool below 1 rank "
                f"(resize at epoch {self.epoch} asked for {self.size})"
            )


@dataclass(frozen=True)
class ResizePlan:
    """An ordered schedule of :class:`ResizeRequest` entries.

    At most one request per epoch: two resizes at the same boundary are
    a contradiction, not a sequence (the supervisor applies a request
    before the epoch runs, so there is no "between" for a second one).
    """

    requests: tuple[ResizeRequest, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.requests, key=lambda r: r.epoch)
        )
        epochs = [r.epoch for r in ordered]
        if len(set(epochs)) != len(epochs):
            dupes = sorted({e for e in epochs if epochs.count(e) > 1})
            raise ValueError(
                f"resize plan names epoch(s) {dupes} more than once; "
                f"one resize per epoch boundary"
            )
        object.__setattr__(self, "requests", ordered)

    @classmethod
    def of(cls, resize) -> "ResizePlan":
        """Coerce ``None`` / a request / an iterable / a plan to a plan."""
        if resize is None:
            return cls()
        if isinstance(resize, ResizePlan):
            return resize
        if isinstance(resize, ResizeRequest):
            return cls((resize,))
        if isinstance(resize, Iterable):
            requests = tuple(resize)
            for r in requests:
                if not isinstance(r, ResizeRequest):
                    raise TypeError(
                        f"resize entries must be ResizeRequest, "
                        f"got {type(r).__name__}"
                    )
            return cls(requests)
        raise TypeError(
            f"resize must be a ResizePlan, ResizeRequest, iterable of "
            f"requests, or None; got {type(resize).__name__}"
        )

    def by_epoch(self) -> dict[int, int]:
        """``{epoch: target size}`` for the supervisor's boundary lookup."""
        return {r.epoch: r.size for r in self.requests}

    @property
    def max_epoch(self) -> int:
        """Largest epoch named (-1 for an empty plan)."""
        return max((r.epoch for r in self.requests), default=-1)
