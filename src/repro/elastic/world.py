"""The epoch-boundary comm-world seam.

Every comm world the elastic runtime builds goes through this module —
the ``repo.topology-epoch`` lint rule makes direct ``MailboxComm`` /
backend / ``run_spmd`` use anywhere else under ``repro/elastic/`` an
error.  The point of the chokepoint: a world only ever changes size
*between* epochs, when the previous world has fully drained (end-of-
stream reached every component) and been torn down, and the checkpoint
is the sole state that crosses the boundary.  Code that could rebuild a
world mid-epoch would silently break the bitwise rescale invariant.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi.launcher import available_backends, backend_capacity, run_spmd


def world_capacity(backend: str) -> int:
    """Largest pool ``backend`` can host (see ``backend_capacity``)."""
    return backend_capacity(backend)


def check_pool_size(size: int, backend: str) -> None:
    """Validate a requested pool size with pointed errors.

    Shrinking below one rank or growing past the launcher's capacity is
    rejected here, before any teardown, so an illegal resize never costs
    the session its current world.
    """
    if backend not in available_backends():
        raise ValueError(
            f"unknown backend {backend!r}; choose from {available_backends()}"
        )
    if size < 1:
        raise ValueError(
            f"cannot shrink the rank pool below 1 (requested size={size})"
        )
    cap = backend_capacity(backend)
    if size > cap:
        raise ValueError(
            f"cannot grow the rank pool to {size}: the {backend!r} backend "
            f"launches at most {cap} ranks"
        )


def run_epoch(
    spmd: Callable[..., Any],
    size: int,
    backend: str,
    options: dict[str, Any],
) -> list[Any]:
    """Build a fresh ``size``-rank world, run one epoch, tear it down.

    This is the only call site in :mod:`repro.elastic` that constructs
    communicators; ``run_spmd`` builds fresh mailboxes/processes per call
    and joins them before returning, so by the time this function
    returns, the world is gone and the pool size is free to change.
    """
    check_pool_size(size, backend)
    return run_spmd(spmd, size=size, backend=backend, **options)
