"""Fixed-width binary segment codec for the tick store.

A *segment* holds one (day, symbol-shard) slice of the Table-II quote
schema as contiguous little-endian structured records, preceded by a
versioned, CRC-protected header.  The layout is chosen so the record
region can be handed to ``numpy.memmap`` directly — column scans are
zero-copy — while integrity stays checkable at block granularity:

======================  ========================================================
region                  contents
======================  ========================================================
fixed header (40 B)     magic ``RPST``, format version, row count, block size
                        (rows per checksum block), block count, dtype-descr
                        length, payload offset, header CRC-32
dtype descr             JSON of ``numpy.dtype.descr`` (self-describing schema)
checksum table          one CRC-32 per block of the record region
padding                 zeros up to the 64-byte-aligned payload offset
payload                 ``rows × itemsize`` bytes of packed records
======================  ========================================================

The codec is schema-generic (the dtype rides in the header) and performs
**no semantic validation** — it must round-trip any structured array
bitwise, including zero sizes, outlier prices and extreme timestamps; the
ingest path owns semantics.  On-disk records carry the quote fields of
:data:`~repro.taq.types.QUOTE_DTYPE` plus a ``seq`` column — the row's
index in the day's chronological stream — which is what makes shard
reassembly exact even for equal timestamps (:data:`STORE_DTYPE`).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.taq.types import QUOTE_DTYPE

#: Segment file magic.
MAGIC = b"RPST"

#: On-disk format version this codec reads and writes.
VERSION = 1

#: Default rows per checksum block (~2.5 MB of quote records).
DEFAULT_BLOCK_ROWS = 65_536

#: Payload alignment in bytes.
_ALIGN = 64

#: magic, version, flags, rows, block_rows, n_blocks, dtype_len, reserved,
#: payload_offset, header_crc.
_FIXED = struct.Struct("<4sHHQIIHHQI")

#: The stored record layout: Table-II quote fields plus the row's index in
#: the day's chronological stream (exact reassembly across shards).
STORE_DTYPE = np.dtype(QUOTE_DTYPE.descr + [("seq", "<u4")])


class CodecError(ValueError):
    """A segment cannot be encoded or is not a valid segment file."""


class CorruptSegmentError(CodecError):
    """A segment file is structurally present but fails integrity checks."""


def _as_le_records(records: np.ndarray) -> np.ndarray:
    """Normalise to a contiguous 1-D little-endian structured array."""
    records = np.asarray(records)
    if records.dtype.names is None:
        raise CodecError(
            f"segments hold structured records, got dtype {records.dtype}"
        )
    if records.ndim != 1:
        raise CodecError(f"segments hold 1-D arrays, got shape {records.shape}")
    le = records.dtype.newbyteorder("<")
    if records.dtype != le:
        records = records.astype(le)
    return np.ascontiguousarray(records)


def encode_segment(
    records: np.ndarray, block_rows: int = DEFAULT_BLOCK_ROWS
) -> bytes:
    """Encode a structured array into segment-file bytes (lossless)."""
    if block_rows <= 0:
        raise CodecError(f"block_rows must be positive, got {block_rows}")
    records = _as_le_records(records)
    descr = json.dumps(records.dtype.descr).encode("utf-8")
    if len(descr) > 0xFFFF:
        raise CodecError("dtype descr too large for the segment header")
    rows = int(records.size)
    itemsize = records.dtype.itemsize
    payload = records.tobytes()
    n_blocks = (rows + block_rows - 1) // block_rows if rows else 0
    checksums = [
        zlib.crc32(
            payload[b * block_rows * itemsize:
                    min(rows, (b + 1) * block_rows) * itemsize]
        )
        for b in range(n_blocks)
    ]
    header_len = _FIXED.size + len(descr) + 4 * n_blocks
    payload_offset = ((header_len + _ALIGN - 1) // _ALIGN) * _ALIGN

    head = bytearray(payload_offset)
    head[: _FIXED.size] = _FIXED.pack(
        MAGIC, VERSION, 0, rows, block_rows, n_blocks, len(descr), 0,
        payload_offset, 0,
    )
    head[_FIXED.size: _FIXED.size + len(descr)] = descr
    table_at = _FIXED.size + len(descr)
    head[table_at: table_at + 4 * n_blocks] = struct.pack(
        f"<{n_blocks}I", *checksums
    )
    crc = zlib.crc32(bytes(head))
    head[: _FIXED.size] = _FIXED.pack(
        MAGIC, VERSION, 0, rows, block_rows, n_blocks, len(descr), 0,
        payload_offset, crc,
    )
    return bytes(head) + payload


def write_segment(
    path, records: np.ndarray, block_rows: int = DEFAULT_BLOCK_ROWS
) -> int:
    """Write ``records`` to ``path`` as one segment; returns bytes written."""
    data = encode_segment(records, block_rows)
    Path(path).write_bytes(data)
    return len(data)


class Segment:
    """One open segment file: parsed header plus block-checked access.

    Opening validates the header (magic, version, header CRC) and that
    the file length matches ``payload_offset + rows * itemsize`` — a
    truncated or padded segment is rejected up front.  Record access
    comes in two flavours: :meth:`memmap` (zero-copy, unverified — the
    scan path) and :meth:`read_block` (copied and CRC-verified — the
    cache/replay path).
    """

    __slots__ = (
        "path", "rows", "block_rows", "n_blocks", "dtype",
        "payload_offset", "checksums",
    )

    def __init__(self, path):
        self.path = Path(path)
        try:
            size = self.path.stat().st_size
        except OSError as exc:
            raise CodecError(f"cannot open segment {self.path}: {exc}") from exc
        with self.path.open("rb") as fh:
            fixed = fh.read(_FIXED.size)
            if len(fixed) < _FIXED.size:
                raise CorruptSegmentError(
                    f"{self.path}: truncated segment header"
                )
            (magic, version, _flags, rows, block_rows, n_blocks, dtype_len,
             _reserved, payload_offset, header_crc) = _FIXED.unpack(fixed)
            if magic != MAGIC:
                raise CodecError(
                    f"{self.path}: not a segment file (magic {magic!r})"
                )
            if version != VERSION:
                raise CodecError(
                    f"{self.path}: unsupported segment version {version} "
                    f"(this codec reads v{VERSION})"
                )
            rest = fh.read(payload_offset - _FIXED.size)
        if len(rest) < payload_offset - _FIXED.size:
            raise CorruptSegmentError(f"{self.path}: truncated segment header")

        head = bytearray(fixed + rest)
        head[: _FIXED.size] = _FIXED.pack(
            magic, version, _flags, rows, block_rows, n_blocks, dtype_len,
            _reserved, payload_offset, 0,
        )
        if zlib.crc32(bytes(head)) != header_crc:
            raise CorruptSegmentError(f"{self.path}: header checksum mismatch")

        descr_raw = rest[: dtype_len]
        try:
            descr = json.loads(descr_raw.decode("utf-8"))
            dtype = np.dtype([tuple(field) for field in descr])
        except (ValueError, TypeError) as exc:
            raise CorruptSegmentError(
                f"{self.path}: unreadable dtype descr: {exc}"
            ) from exc

        expected = payload_offset + rows * dtype.itemsize
        if size != expected:
            raise CorruptSegmentError(
                f"{self.path}: file is {size} bytes, header implies "
                f"{expected} (truncated or trailing garbage)"
            )

        self.rows = int(rows)
        self.block_rows = int(block_rows)
        self.n_blocks = int(n_blocks)
        self.dtype = dtype
        self.payload_offset = int(payload_offset)
        self.checksums = np.frombuffer(
            rest[dtype_len: dtype_len + 4 * n_blocks], dtype="<u4"
        )

    @property
    def nbytes(self) -> int:
        """Size of the record payload in bytes."""
        return self.rows * self.dtype.itemsize

    def memmap(self) -> np.ndarray:
        """The record region as a read-only memory map (zero-copy).

        Integrity is *not* checked on this path — use :meth:`verify` or
        :meth:`read_block` when checksums matter.
        """
        if self.rows == 0:
            return np.empty(0, dtype=self.dtype)
        return np.memmap(
            self.path, dtype=self.dtype, mode="r",
            offset=self.payload_offset, shape=(self.rows,),
        )

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.n_blocks:
            raise IndexError(
                f"{self.path}: block {block} outside [0, {self.n_blocks})"
            )

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Row range ``[lo, hi)`` covered by ``block``."""
        self._check_block(block)
        lo = block * self.block_rows
        return lo, min(self.rows, lo + self.block_rows)

    def read_block(self, block: int) -> np.ndarray:
        """One block's records, CRC-verified; returned read-only.

        The returned array is marked immutable because the block cache
        shares it between callers.
        """
        lo, hi = self.block_bounds(block)
        offset = self.payload_offset + lo * self.dtype.itemsize
        nbytes = (hi - lo) * self.dtype.itemsize
        with self.path.open("rb") as fh:
            fh.seek(offset)
            data = fh.read(nbytes)
        if len(data) != nbytes:
            raise CorruptSegmentError(
                f"{self.path}: block {block} truncated on disk"
            )
        if zlib.crc32(data) != int(self.checksums[block]):
            raise CorruptSegmentError(
                f"{self.path}: block {block} checksum mismatch"
            )
        out = np.frombuffer(data, dtype=self.dtype).copy()
        out.flags.writeable = False
        return out

    def verify(self) -> int:
        """CRC-check every block; returns the verified row count."""
        rows = 0
        for block in range(self.n_blocks):
            rows += self.read_block(block).size
        if rows != self.rows:
            raise CorruptSegmentError(
                f"{self.path}: blocks cover {rows} rows, header says "
                f"{self.rows}"
            )
        return rows


def read_segment(path) -> np.ndarray:
    """Read a whole segment, CRC-verifying every block."""
    seg = Segment(path)
    if seg.n_blocks == 0:
        return np.empty(0, dtype=seg.dtype)
    return np.concatenate(
        [seg.read_block(b) for b in range(seg.n_blocks)]
    )
