"""Byte-budgeted LRU cache for decoded segment blocks.

The replay/assembly read path decodes CRC-verified blocks
(:meth:`~repro.store.codec.Segment.read_block`); repeated backtests over
the same store hit the same blocks day after day, so the reader keeps
them behind this cache.  The budget is in *bytes*, not entries — block
sizes vary with the tail block of each segment — and eviction is strict
LRU.  Hit/miss/eviction counts land in the obs registry
(``store.cache.hits`` / ``store.cache.misses`` / ``store.cache.evictions``
plus a ``store.cache.bytes`` gauge), so ``repro stats`` shows cache
effectiveness next to scan throughput.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.obs import Obs, resolve


class BlockCache:
    """LRU mapping of block keys to decoded (immutable) arrays.

    Values larger than the whole budget are returned to the caller but
    never cached — one oversized block must not wipe the working set.
    """

    __slots__ = ("max_bytes", "hits", "misses", "evictions",
                 "_entries", "_bytes", "_metrics")

    def __init__(self, max_bytes: int = 64 << 20, obs: Obs | None = None):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._bytes = 0
        self._metrics = resolve(obs).metrics

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def get(self, key: Hashable, loader: Callable[[], Any]) -> Any:
        """The cached value for ``key``, loading (and caching) on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._metrics.counter("store.cache.hits").inc()
            return entry
        self.misses += 1
        self._metrics.counter("store.cache.misses").inc()
        value = loader()
        nbytes = int(getattr(value, "nbytes", 0))
        if nbytes <= self.max_bytes:
            self._entries[key] = value
            self._bytes += nbytes
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= int(getattr(evicted, "nbytes", 0))
                self.evictions += 1
                self._metrics.counter("store.cache.evictions").inc()
            self._metrics.gauge("store.cache.bytes").set(self._bytes)
        return value

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._metrics.gauge("store.cache.bytes").set(0)

    def stats(self) -> dict:
        """Hit/miss/eviction counts and current occupancy."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
            "bytes": self._bytes,
            "entries": len(self._entries),
        }
