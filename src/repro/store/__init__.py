"""repro.store — partitioned columnar tick store and zero-copy data plane.

The paper's pipeline exists because raw TAQ is ">50 GB per day"; this
package is the storage analogue of its low-latency design: a day/symbol-
shard partitioned store of fixed-width binary segments with

* a versioned, checksummed codec (:mod:`repro.store.codec`) that
  round-trips Table-II quote arrays bitwise;
* a write path (:mod:`repro.store.writer`) producing per-(day, shard)
  segment files plus a JSON manifest with time ranges, row counts and
  quality statistics;
* a read path (:mod:`repro.store.reader`) using ``numpy.memmap`` for
  zero-copy column scans, manifest-driven predicate pushdown and a
  byte-budgeted LRU block cache (:mod:`repro.store.cache`);
* a replay layer (:mod:`repro.store.replay`) exposing a k-way
  time-ordered merge cursor across shards, feeding the MarketMiner
  collector and all three backtest approaches.

Surface: ``repro store ingest|ls|verify|scan`` on the CLI.
"""

from __future__ import annotations

from repro.store.cache import BlockCache
from repro.store.codec import (
    DEFAULT_BLOCK_ROWS,
    STORE_DTYPE,
    CodecError,
    CorruptSegmentError,
    Segment,
    encode_segment,
    read_segment,
    write_segment,
)
from repro.store.reader import ScanBatch, StoreReader, verify_store
from repro.store.replay import ReplayCursor, StoreQuoteSource
from repro.store.writer import (
    MANIFEST_NAME,
    SCHEMA,
    StoreWriter,
    ingest_csv,
    ingest_synthetic,
)

__all__ = [
    "BlockCache",
    "CodecError",
    "CorruptSegmentError",
    "DEFAULT_BLOCK_ROWS",
    "MANIFEST_NAME",
    "ReplayCursor",
    "SCHEMA",
    "ScanBatch",
    "Segment",
    "STORE_DTYPE",
    "StoreQuoteSource",
    "StoreReader",
    "StoreWriter",
    "encode_segment",
    "ingest_csv",
    "ingest_synthetic",
    "read_segment",
    "verify_store",
    "write_segment",
]
