"""Store read path: memmap column scans, pushdown, cached block reads.

:class:`StoreReader` opens a store root and serves two access patterns:

* :meth:`StoreReader.scan` — columnar scans over ``numpy.memmap`` views:
  zero-copy, unverified, fast.  Predicates (day set, symbol subset, time
  range) are pushed down through the manifest index — segments whose
  recorded symbol set or ``[t_min, t_max]`` envelope cannot match are
  pruned without opening the file; the residual time range is resolved
  with ``searchsorted`` on the (sorted) memmapped timestamp column.
* :meth:`StoreReader.day_quotes` / :meth:`StoreReader.shard_records` —
  CRC-verified block reads through the byte-budgeted LRU
  :class:`~repro.store.cache.BlockCache`, used by the replay layer and
  whenever exact reassembly of the original chronological stream is
  needed (``out[seq] = shard rows`` is a bitwise-exact inverse of the
  writer's shard split).

Scan and cache activity is counted in the obs registry
(``store.scan.rows/bytes/segments/segments_pruned``, ``store.cache.*``),
so ``repro store scan --obs-json`` feeds ``repro stats`` directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.obs import Obs, resolve
from repro.store.cache import BlockCache
from repro.store.codec import (
    STORE_DTYPE,
    CodecError,
    CorruptSegmentError,
    Segment,
)
from repro.store.writer import MANIFEST_NAME, SCHEMA
from repro.taq.types import QUOTE_DTYPE
from repro.taq.universe import Universe


@dataclass(frozen=True)
class ScanBatch:
    """One segment's contribution to a scan: column name → array view."""

    day: int
    shard: int
    rows: int
    columns: dict[str, np.ndarray]


class StoreReader:
    """Reads a store written by :class:`~repro.store.writer.StoreWriter`."""

    def __init__(self, root, cache_bytes: int = 64 << 20,
                 obs: Obs | None = None):
        self.root = Path(root)
        manifest_path = self.root / MANIFEST_NAME
        if not manifest_path.exists():
            raise CodecError(f"no store manifest at {manifest_path}")
        self.manifest = json.loads(manifest_path.read_text())
        if self.manifest.get("schema") != SCHEMA:
            raise CodecError(
                f"{manifest_path}: schema "
                f"{self.manifest.get('schema')!r} is not {SCHEMA!r}"
            )
        dtype = np.dtype([tuple(field) for field in self.manifest["dtype"]])
        if dtype != STORE_DTYPE:
            raise CodecError(
                f"{manifest_path}: store dtype {dtype} does not match this "
                f"reader's {STORE_DTYPE}"
            )
        uni = self.manifest["universe"]
        self.universe = Universe(
            symbols=tuple(uni["symbols"]),
            sectors=tuple(uni["sectors"]),
            base_prices=tuple(uni["base_prices"]),
        )
        self.trading_seconds = int(self.manifest["trading_seconds"])
        self.n_shards = int(self.manifest["n_shards"])
        self._obs = resolve(obs)
        self.cache = BlockCache(cache_bytes, obs=obs)
        self._segments: dict[tuple[int, int], Segment] = {}

    # -- index ---------------------------------------------------------------

    @property
    def days(self) -> list[int]:
        """Ingested day indices, ascending."""
        return sorted(int(d) for d in self.manifest["days"])

    @property
    def n_rows(self) -> int:
        """Total quote rows across every ingested day."""
        return sum(int(e["rows"]) for e in self.manifest["days"].values())

    def _check_day(self, day: int) -> dict:
        entry = self.manifest["days"].get(str(int(day)))
        if entry is None:
            raise KeyError(f"day {day} not in store (have {self.days})")
        return entry

    def segment(self, day: int, shard: int) -> Segment:
        """The (lazily opened, cached) segment handle for (day, shard)."""
        entry = self._check_day(day)
        if not 0 <= shard < self.n_shards:
            raise IndexError(
                f"shard {shard} outside [0, {self.n_shards})"
            )
        key = (int(day), int(shard))
        seg = self._segments.get(key)
        if seg is None:
            seg = Segment(self.root / entry["shards"][shard]["path"])
            self._segments[key] = seg
        return seg

    def _resolve_symbols(self, symbols) -> set[int] | None:
        """Normalise a symbol subset (names or indices) to index form."""
        if symbols is None:
            return None
        out = set()
        for sym in symbols:
            if isinstance(sym, str):
                out.add(self.universe.index_of(sym))
            else:
                idx = int(sym)
                if not 0 <= idx < len(self.universe):
                    raise KeyError(
                        f"symbol index {idx} outside the store universe "
                        f"[0, {len(self.universe)})"
                    )
                out.add(idx)
        if not out:
            raise ValueError("symbol subset must be non-empty")
        return out

    def _check_scan_args(self, columns, days, t_min, t_max) -> None:
        for col in columns:
            if col not in STORE_DTYPE.names:
                raise KeyError(
                    f"unknown column {col!r} (have {STORE_DTYPE.names})"
                )
        for day in days:
            self._check_day(day)
        if t_min is not None and t_max is not None and t_max < t_min:
            raise ValueError(f"t_max={t_max} < t_min={t_min}")

    # -- scans ---------------------------------------------------------------

    def scan(
        self,
        columns: Iterable[str] | None = None,
        days: Iterable[int] | None = None,
        symbols=None,
        t_min: float | None = None,
        t_max: float | None = None,
        cached: bool = False,
    ) -> Iterator[ScanBatch]:
        """Yield per-segment column batches under predicate pushdown.

        ``columns`` defaults to the Table-II quote fields.  The time
        range is half-open: rows with ``t_min <= t < t_max``.  With
        ``cached=True`` records come through the CRC-verified block
        cache instead of the raw memmap (slower, integrity-checked, and
        it exercises ``store.cache.*`` counters).  Batches are zero-copy
        memmap views unless a residual symbol filter forces a mask.
        """
        columns = list(columns) if columns is not None else list(QUOTE_DTYPE.names)
        days = list(days) if days is not None else self.days
        sym_set = self._resolve_symbols(symbols)
        self._check_scan_args(columns, days, t_min, t_max)
        metrics = self._obs.metrics
        for day in days:
            entry = self._check_day(day)
            for shard, sh in enumerate(entry["shards"]):
                if self._pruned(sh, sym_set, t_min, t_max):
                    metrics.counter("store.scan.segments_pruned").inc()
                    continue
                records = (
                    self.shard_records(day, shard)
                    if cached
                    else self.segment(day, shard).memmap()
                )
                lo = (
                    int(np.searchsorted(records["t"], t_min, side="left"))
                    if t_min is not None else 0
                )
                hi = (
                    int(np.searchsorted(records["t"], t_max, side="left"))
                    if t_max is not None else records.size
                )
                sub = records[lo:hi]
                if sym_set is not None and not set(sh["symbols"]) <= sym_set:
                    sub = sub[np.isin(sub["symbol"], sorted(sym_set))]
                batch = {name: sub[name] for name in columns}
                metrics.counter("store.scan.segments").inc()
                metrics.counter("store.scan.rows").inc(int(sub.size))
                metrics.counter("store.scan.bytes").inc(
                    sum(int(col.nbytes) for col in batch.values())
                )
                yield ScanBatch(
                    day=day, shard=shard, rows=int(sub.size), columns=batch
                )

    @staticmethod
    def _pruned(sh: dict, sym_set: set[int] | None,
                t_min: float | None, t_max: float | None) -> bool:
        """True when the manifest proves a segment cannot match."""
        if sh["rows"] == 0:
            return True
        if sym_set is not None and not (set(sh["symbols"]) & sym_set):
            return True
        if t_min is not None and sh["t_max"] is not None and sh["t_max"] < t_min:
            return True
        if t_max is not None and sh["t_min"] is not None and sh["t_min"] >= t_max:
            return True
        return False

    # -- exact reassembly ----------------------------------------------------

    def shard_records(self, day: int, shard: int) -> np.ndarray:
        """One shard's records via the verified block cache (read-only)."""
        seg = self.segment(day, shard)
        if seg.n_blocks == 0:
            return np.empty(0, dtype=seg.dtype)
        parts = [
            self.cache.get(
                (str(seg.path), block),
                lambda block=block: seg.read_block(block),
            )
            for block in range(seg.n_blocks)
        ]
        if len(parts) == 1:
            return parts[0]
        out = np.concatenate(parts)
        out.flags.writeable = False
        return out

    def day_quotes(self, day: int) -> np.ndarray:
        """One day's chronological quote stream, bitwise as ingested.

        The inverse of the writer's shard split: every shard row is
        scattered back to its recorded ``seq`` position.
        """
        entry = self._check_day(day)
        out = np.empty(int(entry["rows"]), dtype=QUOTE_DTYPE)
        for shard in range(self.n_shards):
            records = self.shard_records(day, shard)
            if records.size == 0:
                continue
            seq = records["seq"]
            for name in QUOTE_DTYPE.names:
                out[name][seq] = records[name]
        return out


def verify_store(reader: StoreReader, deep: bool = False) -> dict:
    """Integrity-check every segment; optionally re-derive the source.

    The shallow pass CRC-verifies every block, cross-checks manifest row
    counts against segment headers and asserts each shard is
    chronological.  With ``deep=True`` and a synthetic ingest source the
    generator is rebuilt from the manifest and every day is compared
    bitwise against :meth:`StoreReader.day_quotes` — the store round-trip
    proof.  Raises :class:`~repro.store.codec.CorruptSegmentError` on any
    mismatch; returns a summary dict.
    """
    segments = rows = blocks = 0
    for day in reader.days:
        entry = reader._check_day(day)
        day_rows = 0
        for shard, sh in enumerate(entry["shards"]):
            seg = reader.segment(day, shard)
            if seg.rows != sh["rows"]:
                raise CorruptSegmentError(
                    f"{seg.path}: header says {seg.rows} rows, manifest "
                    f"says {sh['rows']}"
                )
            seg.verify()
            t = seg.memmap()["t"]
            if t.size and np.any(np.diff(t) < 0):
                raise CorruptSegmentError(
                    f"{seg.path}: shard timestamps are not chronological"
                )
            segments += 1
            blocks += seg.n_blocks
            day_rows += seg.rows
        if day_rows != entry["rows"]:
            raise CorruptSegmentError(
                f"day {day}: shards hold {day_rows} rows, manifest says "
                f"{entry['rows']}"
            )
        rows += day_rows

    deep_days = 0
    source = reader.manifest.get("source") or {}
    if deep and source.get("kind") == "synthetic":
        from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig

        market = SyntheticMarket(
            reader.universe,
            SyntheticMarketConfig(**source["config"]),
            seed=source["seed"],
        )
        for day in reader.days:
            if reader.day_quotes(day).tobytes() != market.quotes(day).tobytes():
                raise CorruptSegmentError(
                    f"day {day}: stored stream differs from the "
                    f"regenerated synthetic source"
                )
            deep_days += 1
    return {
        "segments": segments,
        "blocks": blocks,
        "rows": rows,
        "days": len(reader.days),
        "deep_days": deep_days,
    }
