"""Replay: time-ordered merge of symbol shards back into one stream.

The store splits each day across symbol shards; replaying it means
merging those shards back into chronological order.  The merge key is
the ``seq`` column — every shard row remembers its index in the day's
original stream — so the merged order is not merely *a* time order but
*the* order the quotes were ingested in, even when timestamps tie
(real TAQ stamps are whole seconds, so ties are the common case).

Two consumers sit on top:

* :class:`ReplayCursor` — iterates one day as ``(s, records)`` interval
  batches, the exact stream shape the MarketMiner collectors emit on
  their ``quotes`` port.  Shard→interval boundaries are precomputed with
  one ``searchsorted`` per shard; each batch is then a k-way merge of at
  most ``n_shards`` contiguous slices.
* :class:`StoreQuoteSource` — duck-types the ``SyntheticMarket`` surface
  that :class:`~repro.backtest.data.BarProvider` consumes (``universe``,
  ``trading_seconds``, ``quotes(day)``), so all three backtest
  approaches can run off the store unchanged.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.store.reader import StoreReader
from repro.taq.types import QUOTE_DTYPE
from repro.util.timeutil import TimeGrid


def _merge_parts(parts: list[np.ndarray]) -> np.ndarray:
    """Merge store-record slices into one QUOTE_DTYPE batch, seq order."""
    if len(parts) == 1:
        records = parts[0]
    else:
        records = np.concatenate(parts)
        records = records[np.argsort(records["seq"], kind="stable")]
    out = np.empty(records.size, dtype=QUOTE_DTYPE)
    for name in QUOTE_DTYPE.names:
        out[name] = records[name]
    return out


class ReplayCursor:
    """Streams one stored day as per-interval quote batches.

    Iteration yields ``(s, records)`` for every ``s`` in
    ``range(grid.smax)`` — records in original chronological order,
    empty intervals included — bitwise identical to slicing the
    original day stream the way the live collectors do.
    """

    def __init__(self, reader: StoreReader, day: int, grid: TimeGrid):
        if grid.trading_seconds > reader.trading_seconds:
            raise ValueError("grid session longer than the stored session")
        self.reader = reader
        self.day = int(day)
        self.grid = grid
        self._shards = [
            reader.shard_records(self.day, shard)
            for shard in range(reader.n_shards)
        ]
        edges = np.arange(1, grid.smax + 1) * float(grid.delta_s)
        self._bounds = [
            np.concatenate(
                ([0], np.searchsorted(records["t"], edges, side="left"))
            )
            for records in self._shards
        ]
        #: Rows inside the grid's complete intervals (the trailing partial
        #: interval, if any, never replays — matching the collectors).
        self.total_rows = int(sum(b[-1] for b in self._bounds))

    def interval(self, s: int) -> np.ndarray:
        """Interval ``s``'s merged quote batch (may be empty)."""
        if not 0 <= s < self.grid.smax:
            raise IndexError(
                f"interval {s} outside [0, {self.grid.smax})"
            )
        parts = []
        for records, bounds in zip(self._shards, self._bounds):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if hi > lo:
                parts.append(records[lo:hi])
        if not parts:
            return np.empty(0, dtype=QUOTE_DTYPE)
        return _merge_parts(parts)

    def iter_range(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(s, records)`` for intervals ``[start, stop)``.

        The checkpoint-replay cursor: a session restored from a
        watermark resumes the stream here without re-reading (or
        re-delivering) anything below ``start``.
        """
        stop = self.grid.smax if stop is None else stop
        if not 0 <= start <= stop <= self.grid.smax:
            raise IndexError(
                f"interval range [{start}, {stop}) outside "
                f"[0, {self.grid.smax}]"
            )
        for s in range(start, stop):
            yield s, self.interval(s)

    def rows_between(self, start: int, stop: int | None = None) -> int:
        """Stored rows inside intervals ``[start, stop)``."""
        stop = self.grid.smax if stop is None else stop
        if not 0 <= start <= stop <= self.grid.smax:
            raise IndexError(
                f"interval range [{start}, {stop}) outside "
                f"[0, {self.grid.smax}]"
            )
        return int(sum(b[stop] - b[start] for b in self._bounds))

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        return self.iter_range(0, self.grid.smax)

    def __len__(self) -> int:
        return self.grid.smax


class StoreQuoteSource:
    """A store presented through the quote-source protocol.

    Exposes ``universe``, ``trading_seconds`` and ``quotes(day)`` — the
    surface :class:`~repro.backtest.data.BarProvider` and the backtest
    engines need — with days served from segment files instead of the
    synthetic generator.
    """

    def __init__(self, reader: StoreReader):
        self.reader = reader
        self.universe = reader.universe
        self.trading_seconds = reader.trading_seconds

    @property
    def days(self) -> list[int]:
        return self.reader.days

    def quotes(self, day: int) -> np.ndarray:
        """One day's chronological quote stream, bitwise as ingested."""
        return self.reader.day_quotes(day)
