"""Store write path: partitioned segment ingest plus the JSON manifest.

A store root holds one segment file per (day, symbol-shard) —
``day=012/shard=03.seg`` — and a ``manifest.json`` describing the whole
store: schema version, shard count, the full universe (symbols, sectors,
base prices — enough to rebuild a :class:`~repro.taq.universe.Universe`),
the ingest source, and per-day/per-shard statistics (row counts, min/max
timestamps, symbols present, crossed-quote counts, price ranges).  The
manifest is the reader's index: scans prune whole segments from it
before touching a single byte of data.

Sharding is ``symbol % n_shards``, which keeps every shard chronological
(the split preserves stream order) and spreads the universe evenly.  Each
row also records its index in the day's chronological stream (the
``seq`` column of :data:`~repro.store.codec.STORE_DTYPE`), making
reassembly exact — bitwise — even if two quotes share a timestamp.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.obs import Obs, resolve
from repro.store.codec import DEFAULT_BLOCK_ROWS, STORE_DTYPE, write_segment
from repro.taq.synthetic import SyntheticMarket
from repro.taq.types import QUOTE_DTYPE, validate_quote_array
from repro.taq.universe import Universe

#: Manifest schema identifier.
SCHEMA = "repro.store/v1"

MANIFEST_NAME = "manifest.json"


def segment_relpath(day: int, shard: int) -> str:
    """Store-relative path of one (day, shard) segment file."""
    return f"day={day:03d}/shard={shard:02d}.seg"


def _shard_entry(relpath: str, records: np.ndarray, nbytes: int) -> dict:
    prices = np.concatenate([records["bid"], records["ask"]])
    return {
        "path": relpath,
        "rows": int(records.size),
        "bytes": int(nbytes),
        "t_min": float(records["t"][0]) if records.size else None,
        "t_max": float(records["t"][-1]) if records.size else None,
        "symbols": [int(s) for s in np.unique(records["symbol"])],
        "quality": {
            "n_crossed": int(
                np.count_nonzero(records["bid"] >= records["ask"])
            ),
            "price_min": float(prices.min()) if records.size else None,
            "price_max": float(prices.max()) if records.size else None,
        },
    }


class StoreWriter:
    """Ingests chronological quote arrays into a partitioned store."""

    def __init__(
        self,
        root,
        universe: Universe,
        trading_seconds: int,
        n_shards: int = 4,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        obs: Obs | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        if trading_seconds <= 0:
            raise ValueError(
                f"trading_seconds must be positive, got {trading_seconds}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.universe = universe
        self.trading_seconds = int(trading_seconds)
        self.n_shards = int(n_shards)
        self.block_rows = int(block_rows)
        self._obs = resolve(obs)
        self._days: dict[int, dict] = {}

    def write_day(self, day: int, quotes: np.ndarray) -> dict:
        """Shard and persist one day's chronological quote stream."""
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        if day in self._days:
            raise ValueError(f"day {day} already ingested")
        validate_quote_array(quotes, n_symbols=len(self.universe))
        metrics = self._obs.metrics
        with self._obs.trace.span("store.ingest.day", day=day,
                                  rows=int(quotes.size)):
            with metrics.timer("store.ingest.seconds"):
                seq = np.arange(quotes.size, dtype=np.uint32)
                shard_of = quotes["symbol"] % self.n_shards
                entries = []
                day_bytes = 0
                for shard in range(self.n_shards):
                    mask = shard_of == shard
                    records = np.empty(
                        int(np.count_nonzero(mask)), dtype=STORE_DTYPE
                    )
                    for name in QUOTE_DTYPE.names:
                        records[name] = quotes[name][mask]
                    records["seq"] = seq[mask]
                    rel = segment_relpath(day, shard)
                    path = self.root / rel
                    path.parent.mkdir(parents=True, exist_ok=True)
                    nbytes = write_segment(path, records, self.block_rows)
                    day_bytes += nbytes
                    entries.append(_shard_entry(rel, records, nbytes))
            metrics.counter("store.ingest.rows").inc(int(quotes.size))
            metrics.counter("store.ingest.bytes").inc(day_bytes)
            metrics.counter("store.ingest.days").inc()
        entry = {
            "rows": int(quotes.size),
            "t_min": float(quotes["t"][0]) if quotes.size else None,
            "t_max": float(quotes["t"][-1]) if quotes.size else None,
            "shards": entries,
        }
        self._days[day] = entry
        return entry

    def finalize(self, source: dict | None = None) -> dict:
        """Write ``manifest.json`` and return the manifest dict."""
        manifest = {
            "schema": SCHEMA,
            "n_shards": self.n_shards,
            "block_rows": self.block_rows,
            "trading_seconds": self.trading_seconds,
            "dtype": [list(field) for field in STORE_DTYPE.descr],
            "universe": {
                "symbols": list(self.universe.symbols),
                "sectors": list(self.universe.sectors),
                "base_prices": list(self.universe.base_prices),
            },
            "source": source,
            "days": {str(d): self._days[d] for d in sorted(self._days)},
        }
        (self.root / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=1, sort_keys=True) + "\n"
        )
        return manifest


def ingest_synthetic(
    root,
    market: SyntheticMarket,
    n_days: int,
    n_shards: int = 4,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    obs: Obs | None = None,
) -> dict:
    """Ingest ``n_days`` of a synthetic market; returns the manifest.

    The manifest records the generator spec (seed + config), which is
    what lets ``repro store verify --deep`` regenerate each day and
    assert the stored stream is bitwise identical.
    """
    if n_days < 1:
        raise ValueError(f"n_days must be >= 1, got {n_days}")
    writer = StoreWriter(
        root, market.universe, market.config.trading_seconds,
        n_shards=n_shards, block_rows=block_rows, obs=obs,
    )
    with resolve(obs).trace.span("store.ingest", days=n_days,
                                 symbols=len(market.universe)):
        for day in range(n_days):
            writer.write_day(day, market.quotes(day))
    return writer.finalize(
        source={
            "kind": "synthetic",
            "seed": market.seed,
            "config": asdict(market.config),
        }
    )


def ingest_csv(
    root,
    paths,
    universe: Universe,
    trading_seconds: int,
    n_shards: int = 4,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    obs: Obs | None = None,
) -> dict:
    """Ingest Table-II CSV files (one trading day each, in day order)."""
    from repro.taq.io import read_taq_csv

    paths = [Path(p) for p in paths]
    if not paths:
        raise ValueError("need at least one CSV file to ingest")
    writer = StoreWriter(
        root, universe, trading_seconds,
        n_shards=n_shards, block_rows=block_rows, obs=obs,
    )
    with resolve(obs).trace.span("store.ingest", days=len(paths),
                                 symbols=len(universe)):
        for day, path in enumerate(paths):
            writer.write_day(day, read_taq_csv(path, universe))
    return writer.finalize(
        source={"kind": "csv", "paths": [str(p) for p in paths]}
    )
