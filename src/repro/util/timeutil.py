"""Intra-day time grids.

The paper indexes time by intervals of width ``delta_s`` seconds inside a
trading day of 23400 seconds (09:30–16:00 US equities).  ``TimeGrid``
captures that indexing: interval ``s`` covers seconds
``[s * delta_s, (s + 1) * delta_s)`` measured from the open, with
``s = 0 .. smax - 1`` and ``smax = trading_seconds // delta_s``.

The paper's example: with ``delta_s = 30`` a 23400-second day has
``smax = 780`` intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of seconds in a regular US equities trading day (09:30–16:00).
TRADING_SECONDS_PER_DAY = 23_400

#: Seconds from midnight to the 09:30 open.
MARKET_OPEN_SECONDS = 9 * 3600 + 30 * 60


@dataclass(frozen=True, slots=True)
class TimeGrid:
    """Uniform grid of intra-day intervals of width ``delta_s`` seconds.

    Parameters
    ----------
    delta_s:
        Interval width in seconds; must divide into at least one interval.
    trading_seconds:
        Length of the trading session in seconds (default 23400).

    Attributes
    ----------
    smax:
        Number of complete intervals in the session.  A trailing partial
        interval (when ``delta_s`` does not divide ``trading_seconds``) is
        dropped, matching the paper's exact-division examples.
    """

    delta_s: int
    trading_seconds: int = TRADING_SECONDS_PER_DAY

    def __post_init__(self) -> None:
        if self.delta_s <= 0:
            raise ValueError(f"delta_s must be positive, got {self.delta_s}")
        if self.trading_seconds <= 0:
            raise ValueError(
                f"trading_seconds must be positive, got {self.trading_seconds}"
            )
        if self.trading_seconds < self.delta_s:
            raise ValueError(
                f"trading_seconds={self.trading_seconds} shorter than one "
                f"interval of delta_s={self.delta_s}"
            )

    @property
    def smax(self) -> int:
        """Number of complete intervals in the session."""
        return self.trading_seconds // self.delta_s

    def interval_of(self, second: float) -> int:
        """Map a second-from-open offset to its interval index.

        Seconds beyond the last complete interval raise ``ValueError`` so
        that callers never silently index past ``smax - 1``.
        """
        if second < 0:
            raise ValueError(f"second must be >= 0, got {second}")
        s = int(second // self.delta_s)
        if s >= self.smax:
            raise ValueError(
                f"second={second} falls outside the {self.smax} complete "
                f"intervals of this grid"
            )
        return s

    def start_of(self, s: int) -> int:
        """Second-from-open at which interval ``s`` starts."""
        self._check_index(s)
        return s * self.delta_s

    def end_of(self, s: int) -> int:
        """Second-from-open at which interval ``s`` ends (exclusive)."""
        self._check_index(s)
        return (s + 1) * self.delta_s

    def intervals_remaining(self, s: int) -> int:
        """Number of intervals strictly after ``s`` (0 at the last one)."""
        self._check_index(s)
        return self.smax - 1 - s

    def _check_index(self, s: int) -> None:
        if not 0 <= s < self.smax:
            raise IndexError(f"interval index {s} outside [0, {self.smax})")


def seconds_to_clock(second_from_open: float) -> str:
    """Render a second-from-open offset as a wall-clock ``HH:MM:SS`` string.

    Used when printing synthetic TAQ rows in the Table II format.
    """
    if second_from_open < 0:
        raise ValueError(f"second_from_open must be >= 0, got {second_from_open}")
    total = MARKET_OPEN_SECONDS + int(second_from_open)
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h:02d}:{m:02d}:{s:02d}"
