"""Descriptive statistics used throughout the paper's evaluation section.

Tables III–V report mean, median, standard deviation, Sharpe ratio, skewness
and kurtosis of per-pair performance measures; Figure 2 shows box plots.
The definitions here follow the paper:

* skewness is the third standardised central moment,
* kurtosis is the *plain* fourth standardised central moment (a normal
  distribution scores 3, matching the ~3.07 win–loss kurtosis in Table V),
* the Sharpe ratio is ``mean / std`` (the paper's ``SR = r̄ / sqrt(σ̂²)``,
  with no risk-free adjustment),
* box plots use quartiles with Tukey 1.5·IQR whiskers clipped to the most
  extreme non-outlier points.

All functions operate on 1-D array-likes of finite floats and are plain
vectorised NumPy — no Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_clean_1d(values, name: str = "values") -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite (no NaN/inf)")
    return arr


def skewness(values) -> float:
    """Third standardised central moment; 0.0 for constant samples."""
    arr = _as_clean_1d(values)
    centred = arr - arr.mean()
    std = centred.std()
    if std == 0.0:
        return 0.0
    return float(np.mean(centred**3) / std**3)


def kurtosis(values) -> float:
    """Plain (non-excess) fourth standardised central moment.

    Returns 3.0 (the normal value) for constant samples so a degenerate
    strategy does not read as pathologically light-tailed.
    """
    arr = _as_clean_1d(values)
    centred = arr - arr.mean()
    var = centred.var()
    if var == 0.0:
        return 3.0
    return float(np.mean(centred**4) / var**2)


def sharpe_ratio(values) -> float:
    """Paper's Sharpe ratio ``mean / std``; +/-inf for zero-variance samples.

    The sign of infinity follows the sign of the mean, and a zero-mean
    constant sample returns 0.0.
    """
    arr = _as_clean_1d(values)
    mean = arr.mean()
    std = arr.std()
    if std == 0.0:
        if mean == 0.0:
            return 0.0
        return float(np.inf if mean > 0 else -np.inf)
    return float(mean / std)


@dataclass(frozen=True, slots=True)
class DescriptiveStats:
    """The row set of Tables III–V for one sample."""

    n: int
    mean: float
    median: float
    std: float
    sharpe: float
    skewness: float
    kurtosis: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
            "sharpe": self.sharpe,
            "skewness": self.skewness,
            "kurtosis": self.kurtosis,
        }


def describe(values) -> DescriptiveStats:
    """Compute the full Tables III–V statistic set for one sample."""
    arr = _as_clean_1d(values)
    return DescriptiveStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std()),
        sharpe=sharpe_ratio(arr),
        skewness=skewness(arr),
        kurtosis=kurtosis(arr),
    )


@dataclass(frozen=True)
class BoxplotStats:
    """Numeric summary of one Figure-2 box: quartiles, whiskers, outliers."""

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...] = field(default=())

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values) -> BoxplotStats:
    """Tukey box-plot statistics matching Matlab's ``boxplot`` conventions.

    Whiskers extend to the most extreme data points within
    ``1.5 * IQR`` of the quartiles; points beyond are outliers.
    """
    arr = _as_clean_1d(values)
    q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    # With finite data at least the median is always inside the fences.
    whisker_low = float(inside.min())
    whisker_high = float(inside.max())
    outliers = np.sort(arr[(arr < lo_fence) | (arr > hi_fence)])
    return BoxplotStats(
        median=float(med),
        q1=float(q1),
        q3=float(q3),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=tuple(float(x) for x in outliers),
    )
