"""Small argument-validation helpers shared across subpackages.

Every public constructor in the library validates its inputs eagerly so that
misconfiguration fails at build time, not mid-backtest.  These helpers keep
those checks one-line and produce uniform error messages.
"""

from __future__ import annotations

import numbers


def check_positive(value, name: str) -> float:
    """Require a finite number strictly greater than zero; return as float."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not value > 0.0 or value != value or value == float("inf"):
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_positive_int(value, name: str) -> int:
    """Require an integer strictly greater than zero; return as int."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_fraction(value, name: str) -> float:
    """Require a number strictly inside (0, 1); return as float.

    Used for the retracement parameter ``l`` (paper: ``1 > l > 0``).
    """
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must lie strictly in (0, 1), got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Require a number inside [0, 1]; return as float."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0 or value != value:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value
