"""Library logging configuration.

The library logs under the ``repro`` logger hierarchy and never configures
the root logger.  ``configure()`` is a convenience for scripts, examples and
benchmarks; applications embedding the library should configure logging
themselves.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger inside the ``repro`` namespace.

    ``get_logger("corr.parallel")`` and ``get_logger("repro.corr.parallel")``
    name the same logger.
    """
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent)."""
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    return logger
