"""Shared utilities: time grids, descriptive statistics, logging, validation.

These helpers underpin every other subpackage.  They deliberately contain no
market or strategy logic — only generic, heavily tested primitives.
"""

from repro.util.stats import (
    BoxplotStats,
    DescriptiveStats,
    boxplot_stats,
    describe,
    kurtosis,
    sharpe_ratio,
    skewness,
)
from repro.util.timeutil import TimeGrid, seconds_to_clock
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "BoxplotStats",
    "DescriptiveStats",
    "TimeGrid",
    "boxplot_stats",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "describe",
    "kurtosis",
    "seconds_to_clock",
    "sharpe_ratio",
    "skewness",
]
