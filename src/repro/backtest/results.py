"""Result storage for backtest runs.

A :class:`ResultStore` maps ``(pair, param_index, day)`` to that cell's
trade returns — the paper's ``R_p^{t,k}`` — and provides the unions and
compounded views of §IV: eq (1)'s period union, eq (2)'s daily cumulative
return and eq (3)'s total cumulative return.  Stores merge losslessly,
which is how the distributed backtester gathers per-rank partial results.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.metrics.returns import cumulative_return

Key = tuple[tuple[int, int], int, int]


class ResultStore:
    """Trade returns per (pair, parameter set, day)."""

    def __init__(self) -> None:
        self._cells: dict[Key, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResultStore):
            return NotImplemented
        if set(self._cells) != set(other._cells):
            return False
        return all(
            np.array_equal(self._cells[k], other._cells[k]) for k in self._cells
        )

    @staticmethod
    def _key(pair, param_index: int, day: int) -> Key:
        i, j = pair
        if i == j:
            raise ValueError(f"a pair needs two distinct symbols, got {pair}")
        if i > j:
            i, j = j, i
        if param_index < 0 or day < 0:
            raise ValueError("param_index and day must be >= 0")
        return ((int(i), int(j)), int(param_index), int(day))

    def add(self, pair, param_index: int, day: int, returns) -> None:
        """Record one cell's trade returns; double-adds are an error."""
        key = self._key(pair, param_index, day)
        if key in self._cells:
            raise ValueError(f"cell {key} already recorded")
        arr = np.asarray(returns, dtype=float).ravel()
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValueError("trade returns must be finite")
        self._cells[key] = arr

    def has(self, pair, param_index: int, day: int) -> bool:
        """Is there a recorded cell for (pair, parameter set, day)?"""
        return self._key(pair, param_index, day) in self._cells

    # -- views --------------------------------------------------------------

    def cell(self, pair, param_index: int, day: int) -> np.ndarray:
        """Trade returns of one cell (eq: the set ``R_p^{t,k}``)."""
        key = self._key(pair, param_index, day)
        try:
            return self._cells[key].copy()
        except KeyError:
            raise KeyError(f"no results recorded for {key}") from None

    def period_returns(self, pair, param_index: int) -> np.ndarray:
        """Eq (1): union of the pair's trade returns over all recorded days."""
        key_pair, k = self._key(pair, param_index, 0)[0], int(param_index)
        days = sorted(
            d for (p, kk, d) in self._cells if p == key_pair and kk == k
        )
        if not days:
            raise KeyError(f"no results for pair {key_pair}, param {k}")
        return np.concatenate(
            [self._cells[(key_pair, k, d)] for d in days]
            or [np.empty(0)]
        )

    def daily_return(self, pair, param_index: int, day: int) -> float:
        """Eq (2): the day's cumulative return ``r_p^{t,k}``."""
        return cumulative_return(self.cell(pair, param_index, day))

    def daily_return_path(self, pair, param_index: int) -> np.ndarray:
        """Daily cumulative returns over all recorded days, in day order."""
        key_pair = self._key(pair, param_index, 0)[0]
        k = int(param_index)
        days = sorted(
            d for (p, kk, d) in self._cells if p == key_pair and kk == k
        )
        if not days:
            raise KeyError(f"no results for pair {key_pair}, param {k}")
        return np.array(
            [cumulative_return(self._cells[(key_pair, k, d)]) for d in days]
        )

    def total_return(self, pair, param_index: int) -> float:
        """Eq (3): the period's total cumulative return ``r_p^k``."""
        return cumulative_return(self.daily_return_path(pair, param_index))

    # -- enumeration --------------------------------------------------------

    @property
    def pairs(self) -> list[tuple[int, int]]:
        """Sorted pairs with at least one recorded cell."""
        return sorted({p for (p, _, _) in self._cells})

    @property
    def param_indices(self) -> list[int]:
        """Sorted parameter-set indices with at least one recorded cell."""
        return sorted({k for (_, k, _) in self._cells})

    @property
    def days(self) -> list[int]:
        """Sorted day indices with at least one recorded cell."""
        return sorted({d for (_, _, d) in self._cells})

    @property
    def n_trades(self) -> int:
        """Total round-trip trades across every recorded cell."""
        return sum(arr.size for arr in self._cells.values())

    # -- combination ----------------------------------------------------------

    def merge(self, other: "ResultStore") -> None:
        """Absorb another store; overlapping cells are an error."""
        overlap = set(self._cells) & set(other._cells)
        if overlap:
            raise ValueError(f"stores overlap on {len(overlap)} cell(s)")
        self._cells.update(other._cells)

    @classmethod
    def merged(cls, stores: Iterable["ResultStore"]) -> "ResultStore":
        """New store holding the union of ``stores`` (duplicates must agree)."""
        out = cls()
        for store in stores:
            out.merge(store)
        return out
