"""Walk-forward validation of parameter selection.

The selection study (paper §VI future work) picks the best parameter set
in-sample; the obvious follow-up question is whether that choice survives
out-of-sample.  Walk-forward analysis answers it: roll a selection window
across the trading days, pick the best parameter set on each window, and
evaluate it on the following day.  The comparison against the (unknowable
in advance) best-in-hindsight set and against the median set quantifies
selection value and overfitting in one table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backtest.results import ResultStore
from repro.backtest.selection import rank_parameter_sets
from repro.corr.measures import CorrelationType
from repro.metrics.returns import cumulative_return
from repro.strategy.params import StrategyParams
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class WalkForwardStep:
    """One fold: selection window → evaluation day."""

    select_days: tuple[int, ...]
    evaluate_day: int
    chosen_k: int
    chosen_return: float  # mean across pairs on the evaluation day
    best_k: int  # best-in-hindsight on the evaluation day
    best_return: float
    median_return: float  # median across parameter sets on the day


@dataclass(frozen=True)
class WalkForwardReport:
    """All folds plus aggregate diagnostics."""

    steps: tuple[WalkForwardStep, ...]

    @property
    def mean_chosen_return(self) -> float:
        """Mean out-of-sample return of the walk-forward-chosen set."""
        return float(np.mean([s.chosen_return for s in self.steps]))

    @property
    def mean_best_return(self) -> float:
        """Mean out-of-sample return of the (hindsight) best set."""
        return float(np.mean([s.best_return for s in self.steps]))

    @property
    def mean_median_return(self) -> float:
        """Mean out-of-sample return of the median set."""
        return float(np.mean([s.median_return for s in self.steps]))

    @property
    def capture_ratio(self) -> float:
        """How much of the selection-vs-median edge survives out-of-sample.

        1.0 → the in-sample choice is as good as hindsight; 0.0 → no
        better than the median set; negative → worse than median (pure
        overfitting).  Degenerate folds (best == median) count as full
        capture.
        """
        edge_possible = self.mean_best_return - self.mean_median_return
        edge_captured = self.mean_chosen_return - self.mean_median_return
        if abs(edge_possible) < 1e-15:
            return 1.0
        return float(edge_captured / edge_possible)


def _restricted_store(store: ResultStore, days: list[int]) -> ResultStore:
    """A view of ``store`` containing only the given days."""
    out = ResultStore()
    for pair in store.pairs:
        for k in store.param_indices:
            for day in days:
                if store.has(pair, k, day):
                    out.add(pair, k, day, store.cell(pair, k, day))
    return out


def _day_mean_return(store: ResultStore, k: int, day: int) -> float:
    """Mean over pairs of the day's cumulative return for parameter k."""
    values = [
        cumulative_return(store.cell(pair, k, day)) for pair in store.pairs
    ]
    return float(np.mean(values))


def walk_forward(
    store: ResultStore,
    grid: list[StrategyParams],
    window: int = 1,
    measure: str = "returns",
    ctype: CorrelationType | str | None = None,
) -> WalkForwardReport:
    """Roll selection over ``window`` days, evaluate on the next day.

    ``store`` must cover consecutive days; each fold selects the best
    parameter set on days ``[t - window, t)`` and evaluates every set on
    day ``t``.
    """
    check_positive_int(window, "window")
    days = store.days
    if len(days) <= window:
        raise ValueError(
            f"need more than window={window} days, store has {len(days)}"
        )
    if ctype is not None:
        ctype = CorrelationType.parse(ctype)
    ks = [
        k for k, p in enumerate(grid)
        if ctype is None or p.ctype is ctype
    ]
    if not ks:
        raise ValueError(f"no parameter sets for treatment {ctype}")

    steps = []
    for idx in range(window, len(days)):
        select_days = days[idx - window : idx]
        eval_day = days[idx]
        in_sample = _restricted_store(store, select_days)
        ranked = rank_parameter_sets(in_sample, grid, measure, ctype)
        chosen_k = ranked[0].param_index

        day_returns = {k: _day_mean_return(store, k, eval_day) for k in ks}
        best_k = max(day_returns, key=day_returns.get)
        steps.append(
            WalkForwardStep(
                select_days=tuple(select_days),
                evaluate_day=eval_day,
                chosen_k=chosen_k,
                chosen_return=day_returns[chosen_k],
                best_k=best_k,
                best_return=day_returns[best_k],
                median_return=float(np.median(list(day_returns.values()))),
            )
        )
    return WalkForwardReport(steps=tuple(steps))


def format_walk_forward(report: WalkForwardReport) -> str:
    """Render the walk-forward table."""
    lines = [
        f"{'fold':<6} {'select days':<14} {'eval':>5} {'chosen k':>9} "
        f"{'chosen ret':>11} {'best ret':>10} {'median ret':>11}"
    ]
    for i, s in enumerate(report.steps):
        sel = ",".join(map(str, s.select_days))
        lines.append(
            f"{i:<6} {sel:<14} {s.evaluate_day:>5} {s.chosen_k:>9} "
            f"{s.chosen_return:>+11.5f} {s.best_return:>+10.5f} "
            f"{s.median_return:>+11.5f}"
        )
    lines.append(
        f"\nmeans: chosen {report.mean_chosen_return:+.5f}, "
        f"hindsight-best {report.mean_best_return:+.5f}, "
        f"median {report.mean_median_return:+.5f} "
        f"(capture ratio {report.capture_ratio:+.2f})"
    )
    return "\n".join(lines)
