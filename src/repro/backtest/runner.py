"""Approach 2: the sequential, per-pair "Matlab" baseline.

The paper's second Matlab approach "re-created all correlation timeseries
in Matlab", producing "a daily return vector R_p^{t,k} for a given pair p,
day t and parameter vector k in approximately 2 seconds" — one independent
job per (pair, day, parameter set), each recomputing its own correlation
series from scratch.  :class:`SequentialBacktester` reproduces exactly that
cost structure; ``share_correlation=True`` adds the obvious memoisation
(one correlation series per (pair, M, Ctype, day)) as a measured ablation
between Approach 2 and the integrated Approach 3.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.backtest.data import BarProvider
from repro.backtest.results import ResultStore
from repro.corr.batch import BatchWorkspace, batch_pair_series, check_backend
from repro.corr.maronna import MaronnaConfig
from repro.corr.measures import corr_series
from repro.obs import NULL_METRIC, Obs
from repro.strategy.costs import ExecutionModel, execution_salt
from repro.strategy.engine import Trade, align_corr_series, run_pair_day
from repro.strategy.params import StrategyParams

#: Histogram of per-(pair, day, parameter set) job wall seconds — the
#: paper's "approximately 2 seconds" unit of work, shared by every engine
#: so Section-IV benchmarks read one metric regardless of approach.
PAIR_DAY_HIST = "backtest.pair_day.seconds"


@dataclass(frozen=True)
class CellFailure:
    """One failed (pair, day, parameter set) cell of a sweep.

    A 61-stock × 20-day × 42-set study is 1.5M cells; one bad cell must
    not discard a night of compute.  Engines running with
    ``on_error="continue"`` record these instead of aborting, and the
    sweep driver reports them as a manifest (and a non-zero exit).
    """

    pair: tuple[int, int]
    day: int
    param_index: int
    exc_type: str
    message: str
    traceback: str

    @property
    def sort_key(self) -> tuple:
        """Deterministic (day, pair, param index) ordering key."""
        return (self.day, self.pair, self.param_index)

    def describe(self) -> str:
        """One-line human-readable summary of the failed cell."""
        return (
            f"pair={self.pair} day={self.day} k={self.param_index}: "
            f"{self.exc_type}: {self.message}"
        )


def _capture_cell_failure(
    pair: tuple[int, int], day: int, k: int, exc: BaseException
) -> CellFailure:
    return CellFailure(
        pair=tuple(pair),
        day=day,
        param_index=k,
        exc_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    )


def backtest_pair_day(
    prices: np.ndarray,
    params: StrategyParams,
    corr: np.ndarray | None = None,
    maronna_config: MaronnaConfig | None = None,
    execution: ExecutionModel | None = None,
    salt: int = 0,
    obs: Obs | None = None,
) -> list[Trade]:
    """Run one (pair, day, parameter set) job, the paper's unit of work.

    ``prices`` is the pair's ``(smax, 2)`` BAM closes.  Without a supplied
    ``corr`` series the job computes its own — the Approach-2 cost profile.
    With ``obs`` the job's wall time lands in ``backtest.pair_day.seconds``.
    """
    prices = np.asarray(prices, dtype=float)
    if prices.ndim != 2 or prices.shape[1] != 2:
        raise ValueError(f"prices must be (smax, 2), got {prices.shape}")
    smax = prices.shape[0]
    hist = (
        obs.metrics.histogram(PAIR_DAY_HIST)
        if obs is not None and obs.enabled
        else None
    )
    t0 = time.perf_counter() if hist is not None else 0.0
    if corr is None:
        returns = np.diff(np.log(prices), axis=0)
        series = corr_series(
            returns[:, 0], returns[:, 1], params.m, params.ctype, maronna_config
        )
        corr = align_corr_series(series, smax, params.m)
    trades = run_pair_day(prices, corr, params, execution=execution, salt=salt)
    if hist is not None:
        hist.observe(time.perf_counter() - t0)
    return trades


class SequentialBacktester:
    """Loop over (day, pair, parameter set) jobs on a single process.

    ``corr_backend="batch"`` (requires ``share_correlation=True``)
    replaces the per-pair correlation fills with one all-pairs batch
    evaluation per (day, window, treatment) spec — the
    :mod:`repro.corr.batch` kernels — leaving every trade bitwise
    identical to the scalar path; with it, the per-job clock covers only
    the strategy scan and the correlation cost lands in ``corr.batch.*``.
    """

    def __init__(
        self,
        provider: BarProvider,
        share_correlation: bool = False,
        maronna_config: MaronnaConfig | None = None,
        execution: ExecutionModel | None = None,
        obs: Obs | None = None,
        profile: bool = False,
        profile_interval: float = 0.005,
        corr_backend: str = "scalar",
    ):
        self.provider = provider
        self.share_correlation = share_correlation
        self.maronna_config = maronna_config
        self.execution = execution
        self.obs = obs
        self.corr_backend = check_backend(corr_backend)
        if corr_backend == "batch" and not share_correlation:
            raise ValueError(
                "corr_backend='batch' computes each correlation series once "
                "per (day, spec); it requires share_correlation=True (the "
                "unshared mode exists to reproduce the paper's recompute-"
                "per-cell cost profile, which batching would silently change)"
            )
        self._workspace = BatchWorkspace() if corr_backend == "batch" else None
        #: With ``profile=True`` (and an enabled obs), each run is stack-
        #: sampled and the profile folded into ``obs.profile``.
        self.profile = profile
        self.profile_interval = profile_interval
        #: Wall-clock seconds spent per (pair, day, param) job in the last run.
        self.last_job_seconds: list[float] = []
        #: Cells skipped by the last ``on_error="continue"`` run.
        self.last_failures: list[CellFailure] = []

    def run(
        self,
        pairs: list[tuple[int, int]],
        grid: list[StrategyParams],
        days: list[int],
        on_error: str = "abort",
    ) -> ResultStore:
        """Backtest every (pair, parameter set) cell over the given days.

        ``on_error="continue"`` records a :class:`CellFailure` per failed
        cell in ``self.last_failures`` and keeps sweeping; the default
        aborts on the first failure, preserving historical behaviour.
        """
        if on_error not in ("abort", "continue"):
            raise ValueError(
                f"on_error must be 'abort' or 'continue', got {on_error!r}"
            )
        self._validate(pairs, grid, days)
        obs = self.obs
        record = obs is not None and obs.enabled
        span = (
            obs.trace.span(
                "approach2", days=len(days), pairs=len(pairs), grid=len(grid)
            )
            if record
            else NULL_METRIC
        )
        store = ResultStore()
        self.last_job_seconds = []
        self.last_failures = []
        profiler = None
        if self.profile and record:
            from repro.obs.live.profiler import SamplingProfiler

            profiler = SamplingProfiler(obs, interval=self.profile_interval)
            profiler.start()
        try:
            self._run_cells(store, pairs, grid, days, span, on_error, record)
        finally:
            if profiler is not None:
                profiler.stop()
        if record:
            obs.metrics.counter("backtest.jobs").inc(len(self.last_job_seconds))
        return store

    def _prefill_corr_cache(
        self, corr_cache, pairs, grid, returns, smax, record
    ):
        """Batch backend: one all-pairs evaluation per (window, treatment).

        Fills the same ``(i, j, m, ctype)``-keyed cache the scalar path
        fills lazily, with bitwise-identical series (the batch kernels'
        equivalence contract), so the strategy loop below is unchanged.
        """
        obs = self.obs if record else None
        specs = sorted(
            {(p.m, p.ctype) for p in grid}, key=lambda s: (s[0], s[1].value)
        )
        for m, ctype in specs:
            block = batch_pair_series(
                returns, m, ctype, self.maronna_config, pairs=pairs,
                obs=obs, workspace=self._workspace,
            )
            for p, (i, j) in enumerate(pairs):
                corr_cache[(i, j, m, ctype)] = align_corr_series(
                    block[:, p], smax, m
                )

    def _run_cells(self, store, pairs, grid, days, span, on_error, record):
        obs = self.obs
        with span:
            for day in days:
                prices = self.provider.prices(day)
                smax = prices.shape[0]
                returns = self.provider.returns(day)
                corr_cache: dict[tuple, np.ndarray] = {}
                if self.corr_backend == "batch":
                    self._prefill_corr_cache(
                        corr_cache, pairs, grid, returns, smax, record
                    )
                for i, j in pairs:
                    pair_prices = prices[:, [i, j]]
                    for k, params in enumerate(grid):
                        t0 = time.perf_counter()
                        corr = None
                        if self.share_correlation:
                            spec = (i, j, params.m, params.ctype)
                            if spec not in corr_cache:
                                series = corr_series(
                                    returns[:, i],
                                    returns[:, j],
                                    params.m,
                                    params.ctype,
                                    self.maronna_config,
                                )
                                corr_cache[spec] = align_corr_series(
                                    series, smax, params.m
                                )
                            corr = corr_cache[spec]
                        # The timing loop owns the job clock — pass obs=None
                        # down so the job does not also record itself.
                        try:
                            trades = backtest_pair_day(
                                pair_prices,
                                params,
                                corr,
                                self.maronna_config,
                                execution=self.execution,
                                salt=execution_salt((i, j), k),
                            )
                        except Exception as exc:
                            if on_error == "abort":
                                raise
                            self.last_failures.append(
                                _capture_cell_failure((i, j), day, k, exc)
                            )
                            if record:
                                obs.metrics.counter(
                                    "backtest.cells_failed"
                                ).inc()
                            continue
                        elapsed = time.perf_counter() - t0
                        self.last_job_seconds.append(elapsed)
                        if record:
                            obs.metrics.histogram(PAIR_DAY_HIST).observe(elapsed)
                        store.add((i, j), k, day, [t.ret for t in trades])

    def _validate(
        self,
        pairs: list[tuple[int, int]],
        grid: list[StrategyParams],
        days: list[int],
    ) -> None:
        if not pairs or not grid or not days:
            raise ValueError("pairs, grid and days must all be non-empty")
        n = self.provider.n_symbols
        for i, j in pairs:
            if not (0 <= i < n and 0 <= j < n and i != j):
                raise ValueError(f"invalid pair ({i}, {j}) for universe size {n}")
        if len(set(days)) != len(days):
            raise ValueError("days must be unique")
