"""Shared day-data provider for the backtesting engines.

Every backtest architecture consumes the same inputs per trading day: the
cleaned quote stream reduced to a rectangular grid of BAM bar closes and
its 1-period log-returns.  :class:`BarProvider` produces those once per
day (with caching), so engine comparisons measure architecture, not data
preparation.
"""

from __future__ import annotations

import numpy as np

from repro.bars.accumulator import accumulate_bam
from repro.bars.returns import log_returns
from repro.clean.filters import clean_quotes
from repro.util.timeutil import TimeGrid


def _session_seconds(source) -> int:
    """Trading-session length of a quote source.

    ``SyntheticMarket`` carries it on ``config``;
    :class:`~repro.store.replay.StoreQuoteSource` (and any other adapter)
    exposes it directly as ``trading_seconds``.
    """
    config = getattr(source, "config", None)
    if config is not None and hasattr(config, "trading_seconds"):
        return int(config.trading_seconds)
    return int(source.trading_seconds)


class BarProvider:
    """BAM bar closes and log-returns per day, from a quote source.

    Parameters
    ----------
    market:
        The quote source: anything with ``universe``, a session length
        (``config.trading_seconds`` or ``trading_seconds``) and
        ``quotes(day)`` — a ``SyntheticMarket`` or a store-backed
        ``StoreQuoteSource``.
    grid:
        Interval grid (``Δs`` and session length).
    clean:
        Apply the TCP-like filter before bar accumulation (default True —
        the paper always cleans raw TAQ data before analysis).
    """

    def __init__(self, market, grid: TimeGrid, clean: bool = True):
        if grid.trading_seconds > _session_seconds(market):
            raise ValueError(
                "grid session longer than the market's trading session"
            )
        self.market = market
        self.grid = grid
        self.clean = clean
        self._price_cache: dict[int, np.ndarray] = {}

    @property
    def n_symbols(self) -> int:
        """Number of symbols in the provider's universe."""
        return len(self.market.universe)

    @property
    def smax(self) -> int:
        """Number of grid intervals per day (the paper's ``smax``)."""
        return self.grid.smax

    def prices(self, day: int) -> np.ndarray:
        """BAM closes, shape ``(smax, n_symbols)``; cached per day."""
        if day not in self._price_cache:
            quotes = self.market.quotes(day)
            # Quotes beyond the last complete interval never form a bar
            # (the grid drops a trailing partial interval).
            cutoff = self.grid.smax * self.grid.delta_s
            quotes = quotes[quotes["t"] < cutoff]
            if self.clean:
                quotes, _ = clean_quotes(quotes, self.n_symbols)
            self._price_cache[day] = accumulate_bam(
                quotes, self.grid, self.n_symbols
            )
        return self._price_cache[day]

    def returns(self, day: int) -> np.ndarray:
        """1-period log-returns of the day's closes, shape (smax-1, n)."""
        return log_returns(self.prices(day))

    def clear_cache(self) -> None:
        """Drop every cached per-day price matrix."""
        self._price_cache.clear()
