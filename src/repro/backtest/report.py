"""One-stop study report: the paper's whole evaluation in a single text.

:func:`study_report` takes a completed sweep and renders everything the
paper's Section V presents plus the deferred analyses this library adds:

* Tables III–V (treatment summaries for all three measures),
* Figure-2 box-plot statistics,
* paired significance tests between treatments,
* optimal parameter sets and best pairs,
* walk-forward validation of the selection (when the study spans more
  than one day).

It is the artefact a practitioner would hand around after a run; the
``full_reproduction`` example and the EXPERIMENTS.md numbers come from
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.backtest.selection import (
    format_selection_report,
    rank_pairs,
    rank_parameter_sets,
)
from repro.backtest.walkforward import format_walk_forward, walk_forward
from repro.corr.measures import CorrelationType
from repro.metrics.significance import (
    format_significance_table,
    treatment_significance,
)
from repro.metrics.summary import (
    boxplot_by_treatment,
    format_treatment_table,
    treatment_summaries,
)
from repro.strategy.params import StrategyParams

if TYPE_CHECKING:
    from repro.backtest.results import ResultStore

_MEASURE_TITLES = (
    ("returns", "Table III: average cumulative returns (gross)"),
    ("drawdown", "Table IV: average maximum daily drawdown"),
    ("winloss", "Table V: average win-loss ratio"),
)


@dataclass(frozen=True)
class StudyReportOptions:
    """What to include and how hard to bootstrap."""

    include_significance: bool = True
    include_selection: bool = True
    include_walkforward: bool = True
    include_boxplots: bool = True
    n_bootstrap: int = 1000
    selection_top: int = 5
    seed: int = 0
    symbols: tuple[str, ...] | None = None


def _boxplot_section(store, grid) -> str:
    lines = ["Figure 2: box-plot statistics per treatment"]
    for measure, _ in _MEASURE_TITLES:
        boxes = boxplot_by_treatment(store, grid, measure)
        lines.append(f"  {measure}:")
        for ctype in CorrelationType:
            if ctype not in boxes:
                continue
            b = boxes[ctype]
            lines.append(
                f"    {ctype.value:<9} median {b.median:.4f} "
                f"[{b.q1:.4f}, {b.q3:.4f}], whiskers "
                f"[{b.whisker_low:.4f}, {b.whisker_high:.4f}], "
                f"{len(b.outliers)} outliers"
            )
    return "\n".join(lines)


def study_report(
    store: "ResultStore",
    grid: list[StrategyParams],
    options: StudyReportOptions | None = None,
) -> str:
    """Render the full evaluation of a completed study."""
    opts = options if options is not None else StudyReportOptions()
    n_pairs = len(store.pairs)
    n_days = len(store.days)
    sections = [
        f"Study: {n_pairs} pairs x {len(grid)} parameter sets x "
        f"{n_days} day(s), {store.n_trades} trades",
        "",
    ]

    for measure, title in _MEASURE_TITLES:
        sections.append(
            format_treatment_table(
                treatment_summaries(store, grid, measure), title
            )
        )
        sections.append("")

    if opts.include_boxplots:
        sections.append(_boxplot_section(store, grid))
        sections.append("")

    if opts.include_significance:
        comparisons = []
        for measure, _ in _MEASURE_TITLES:
            comparisons.extend(
                treatment_significance(
                    store,
                    grid,
                    measure,
                    n_bootstrap=opts.n_bootstrap,
                    seed=opts.seed,
                )
            )
        sections.append("Significance of treatment differences:")
        sections.append(format_significance_table(comparisons))
        sections.append("")

    if opts.include_selection:
        sections.append(
            format_selection_report(
                rank_parameter_sets(store, grid, "returns"),
                rank_pairs(store, grid, "returns"),
                "returns",
                top=opts.selection_top,
                symbols=opts.symbols,
            )
        )
        sections.append("")

    if opts.include_walkforward and n_days > 1:
        sections.append("Walk-forward validation (window = 1 day):")
        sections.append(format_walk_forward(walk_forward(store, grid, window=1)))
        sections.append("")

    return "\n".join(sections).rstrip() + "\n"
