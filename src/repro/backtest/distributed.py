"""Approach 3: the integrated, MPI-parallel MarketMiner backtest.

The paper's target architecture: correlation computation happens once,
market-wide, inside the platform, and strategy evaluation is distributed.
Per day:

1. rank 0 prepares the day's bars and broadcasts them (the data-adapter
   stage of Figure 1);
2. for each distinct (M, Ctype) in the parameter grid, every pair's
   correlation series is computed exactly once, with the pair blocks
   distributed across ranks (:class:`~repro.corr.parallel.ParallelCorrelationEngine`)
   — this removes "the main bottleneck, the computation of all pair-wise
   correlations";
3. the (pair, parameter set) strategy runs are partitioned by pair across
   ranks, each rank reusing the shared correlation series for all its
   parameter sets;
4. per-rank partial :class:`~repro.backtest.results.ResultStore`\\ s are
   gathered and merged at the master, which is where the paper hangs risk
   management and basket execution.

The result is identical to both Matlab-style engines (tested invariant);
only the time and memory profiles differ.
"""

from __future__ import annotations

import time

from repro.backtest.data import BarProvider
from repro.backtest.results import ResultStore
from repro.backtest.runner import CellFailure, _capture_cell_failure
from repro.corr.batch import check_backend
from repro.corr.maronna import MaronnaConfig
from repro.corr.parallel import ParallelCorrelationEngine
from repro.elastic.sharding import shard_pairs
from repro.mpi.api import Comm
from repro.obs import NULL_METRIC, Obs, comm_obs
from repro.strategy.costs import ExecutionModel, execution_salt
from repro.strategy.engine import align_corr_series, run_pair_day
from repro.strategy.params import StrategyParams


class DistributedBacktester:
    """SPMD backtester over the MPI substrate."""

    def __init__(
        self,
        provider: BarProvider,
        maronna_config: MaronnaConfig | None = None,
        execution: ExecutionModel | None = None,
        corr_backend: str = "scalar",
    ):
        self.provider = provider
        self.maronna_config = maronna_config
        self.execution = execution
        #: Per-rank correlation backend for stage 2 — ``"batch"`` runs each
        #: rank's pair block through the all-pairs kernels
        #: (:mod:`repro.corr.batch`); merged results are bitwise-identical
        #: to the scalar oracle on both MPI backends.
        self.corr_backend = check_backend(corr_backend)
        #: Merged cross-rank manifest of the last ``on_error="continue"``
        #: run — identical on every rank after the final broadcast.
        self.last_failures: list[CellFailure] = []

    def run(
        self,
        comm: Comm,
        pairs: list[tuple[int, int]],
        grid: list[StrategyParams],
        days: list[int],
        obs: Obs | None = None,
        on_error: str = "abort",
        profile: bool = False,
        profile_interval: float = 0.005,
    ) -> ResultStore:
        """SPMD entry point: every rank calls this; every rank returns the
        complete merged store (the master additionally being where basket
        aggregation would attach).  ``obs`` defaults to the communicator's
        attached handle, so MPI and engine telemetry land in one registry.

        ``on_error="continue"`` skips failed (pair, day, parameter set)
        cells; the per-rank failures are gathered alongside the partial
        stores and every rank ends with the same sorted manifest in
        ``self.last_failures``.

        ``profile=True`` stack-samples this rank's run and folds the
        profile into ``obs.profile``, so the cross-rank report merge
        surfaces one flame table spanning all ranks.
        """
        if on_error not in ("abort", "continue"):
            raise ValueError(
                f"on_error must be 'abort' or 'continue', got {on_error!r}"
            )
        if not pairs or not grid or not days:
            raise ValueError("pairs, grid and days must all be non-empty")
        if obs is None:
            obs = comm_obs(comm)
        record = obs is not None and obs.enabled
        root_span = (
            obs.trace.span(
                "approach3", rank=comm.rank, size=comm.size, days=len(days)
            )
            if record
            else NULL_METRIC
        )
        pairs = [tuple(sorted(p)) for p in pairs]
        store = ResultStore()
        failures: list[CellFailure] = []
        self.last_failures = []
        # Stable-hash sharding (not contiguous blocks): a pair's shard is a
        # pure function of its id, so membership survives pool resizes and
        # the merged store is identical at any rank count.
        my_pairs = shard_pairs(pairs, comm.size)[comm.rank]
        specs = sorted(
            {(p.m, p.ctype) for p in grid}, key=lambda s: (s[0], s[1].value)
        )
        profiler = NULL_METRIC
        if profile and record:
            from repro.obs.live.profiler import SamplingProfiler

            profiler = SamplingProfiler(obs, interval=profile_interval)
        with profiler, root_span:
            for day in days:
                day_span = (
                    obs.trace.span("day", day=day) if record else NULL_METRIC
                )
                with day_span:
                    # Stage 1: master prepares bars, broadcasts market-wide
                    # data.
                    stage = (
                        obs.trace.span("bcast_bars")
                        if record
                        else NULL_METRIC
                    )
                    with stage:
                        if comm.rank == 0:
                            bundle = (
                                self.provider.prices(day),
                                self.provider.returns(day),
                            )
                        else:
                            bundle = None
                        prices, returns = comm.bcast(bundle, root=0)
                    smax = prices.shape[0]

                    # Stage 2: each correlation series computed exactly once,
                    # pair-blocks distributed, result replicated on all ranks.
                    stage = (
                        obs.trace.span("correlation")
                        if record
                        else NULL_METRIC
                    )
                    with stage:
                        series_by_spec = {}
                        for m, ctype in specs:
                            engine = ParallelCorrelationEngine(
                                ctype, self.maronna_config,
                                backend=self.corr_backend,
                            )
                            series_by_spec[(m, ctype)] = engine.pair_series(
                                comm, returns, m, pairs
                            )

                    # Stage 3: strategy runs for this rank's pair block, all
                    # parameter sets, reusing the shared series.
                    stage = (
                        obs.trace.span("strategy", pairs=len(my_pairs))
                        if record
                        else NULL_METRIC
                    )
                    with stage:
                        for i, j in my_pairs:
                            pair_prices = prices[:, [i, j]]
                            for k, params in enumerate(grid):
                                t0 = time.perf_counter() if record else 0.0
                                series = series_by_spec[
                                    (params.m, params.ctype)
                                ][(i, j)]
                                corr = align_corr_series(
                                    series, smax, params.m
                                )
                                try:
                                    trades = run_pair_day(
                                        pair_prices,
                                        corr,
                                        params,
                                        execution=self.execution,
                                        salt=execution_salt((i, j), k),
                                    )
                                except Exception as exc:
                                    if on_error == "abort":
                                        raise
                                    failures.append(
                                        _capture_cell_failure(
                                            (i, j), day, k, exc
                                        )
                                    )
                                    if record:
                                        obs.metrics.counter(
                                            "backtest.cells_failed"
                                        ).inc()
                                    continue
                                if record:
                                    obs.metrics.histogram(
                                        "backtest.pair_day.seconds"
                                    ).observe(time.perf_counter() - t0)
                                store.add(
                                    (i, j), k, day, [t.ret for t in trades]
                                )

            # Stage 4: gather partial stores at the master, merge, share
            # back.
            stage = (
                obs.trace.span("gather_merge") if record else NULL_METRIC
            )
            with stage:
                partials = comm.gather(store, root=0)
                if comm.rank == 0:
                    merged = ResultStore.merged(partials)
                else:
                    merged = None
                merged = comm.bcast(merged, root=0)
                if on_error == "continue":
                    failure_parts = comm.gather(failures, root=0)
                    manifest = None
                    if comm.rank == 0:
                        manifest = sorted(
                            (f for part in failure_parts for f in part),
                            key=lambda f: f.sort_key,
                        )
                    self.last_failures = comm.bcast(manifest, root=0)
        if record:
            obs.metrics.counter("backtest.jobs").inc(
                len(my_pairs) * len(grid) * len(days)
            )
        return merged
