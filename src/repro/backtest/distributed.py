"""Approach 3: the integrated, MPI-parallel MarketMiner backtest.

The paper's target architecture: correlation computation happens once,
market-wide, inside the platform, and strategy evaluation is distributed.
Per day:

1. rank 0 prepares the day's bars and broadcasts them (the data-adapter
   stage of Figure 1);
2. for each distinct (M, Ctype) in the parameter grid, every pair's
   correlation series is computed exactly once, with the pair blocks
   distributed across ranks (:class:`~repro.corr.parallel.ParallelCorrelationEngine`)
   — this removes "the main bottleneck, the computation of all pair-wise
   correlations";
3. the (pair, parameter set) strategy runs are partitioned by pair across
   ranks, each rank reusing the shared correlation series for all its
   parameter sets;
4. per-rank partial :class:`~repro.backtest.results.ResultStore`\\ s are
   gathered and merged at the master, which is where the paper hangs risk
   management and basket execution.

The result is identical to both Matlab-style engines (tested invariant);
only the time and memory profiles differ.
"""

from __future__ import annotations

from repro.backtest.data import BarProvider
from repro.backtest.results import ResultStore
from repro.corr.maronna import MaronnaConfig
from repro.corr.parallel import ParallelCorrelationEngine, partition_pairs
from repro.mpi.api import Comm
from repro.strategy.costs import ExecutionModel, execution_salt
from repro.strategy.engine import align_corr_series, run_pair_day
from repro.strategy.params import StrategyParams


class DistributedBacktester:
    """SPMD backtester over the MPI substrate."""

    def __init__(
        self,
        provider: BarProvider,
        maronna_config: MaronnaConfig | None = None,
        execution: ExecutionModel | None = None,
    ):
        self.provider = provider
        self.maronna_config = maronna_config
        self.execution = execution

    def run(
        self,
        comm: Comm,
        pairs: list[tuple[int, int]],
        grid: list[StrategyParams],
        days: list[int],
    ) -> ResultStore:
        """SPMD entry point: every rank calls this; every rank returns the
        complete merged store (the master additionally being where basket
        aggregation would attach)."""
        if not pairs or not grid or not days:
            raise ValueError("pairs, grid and days must all be non-empty")
        pairs = [tuple(sorted(p)) for p in pairs]
        store = ResultStore()
        my_pairs = partition_pairs(pairs, comm.size)[comm.rank]
        specs = sorted(
            {(p.m, p.ctype) for p in grid}, key=lambda s: (s[0], s[1].value)
        )
        for day in days:
            # Stage 1: master prepares bars, broadcasts market-wide data.
            if comm.rank == 0:
                bundle = (self.provider.prices(day), self.provider.returns(day))
            else:
                bundle = None
            prices, returns = comm.bcast(bundle, root=0)
            smax = prices.shape[0]

            # Stage 2: each correlation series computed exactly once,
            # pair-blocks distributed, result replicated on all ranks.
            series_by_spec = {}
            for m, ctype in specs:
                engine = ParallelCorrelationEngine(ctype, self.maronna_config)
                series_by_spec[(m, ctype)] = engine.pair_series(
                    comm, returns, m, pairs
                )

            # Stage 3: strategy runs for this rank's pair block, all
            # parameter sets, reusing the shared series.
            for i, j in my_pairs:
                pair_prices = prices[:, [i, j]]
                for k, params in enumerate(grid):
                    series = series_by_spec[(params.m, params.ctype)][(i, j)]
                    corr = align_corr_series(series, smax, params.m)
                    trades = run_pair_day(
                        pair_prices,
                        corr,
                        params,
                        execution=self.execution,
                        salt=execution_salt((i, j), k),
                    )
                    store.add((i, j), k, day, [t.ret for t in trades])

        # Stage 4: gather partial stores at the master, merge, share back.
        partials = comm.gather(store, root=0)
        if comm.rank == 0:
            merged = ResultStore.merged(partials)
        else:
            merged = None
        return comm.bcast(merged, root=0)
