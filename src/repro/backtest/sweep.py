"""Full experiment sweeps: pairs × parameter sets × days.

:func:`run_sweep` is the one-call driver behind the Tables III–V and
Figure-2 reproductions: build the synthetic month, run every pair and
parameter set through the chosen backtest engine, and return the
:class:`~repro.backtest.results.ResultStore` plus the grid needed to
summarise it.  Defaults are scaled to a single core; every knob scales to
the paper's 61 stocks × 20 days × 42 sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backtest.data import BarProvider
from repro.backtest.distributed import DistributedBacktester
from repro.backtest.results import ResultStore
from repro.backtest.runner import SequentialBacktester
from repro.corr.batch import check_backend as check_corr_backend
from repro.corr.maronna import MaronnaConfig
from repro.mpi.launcher import run_spmd
from repro.obs import Obs, attach_to_comm
from repro.strategy.costs import ExecutionModel
from repro.strategy.params import StrategyParams, paper_parameter_grid
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import Universe, default_universe
from repro.util.timeutil import TimeGrid
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class SweepConfig:
    """One study's shape.

    The default base parameter set is shortened relative to the paper's
    canonical vector so a scaled-down session still has room to trade
    (windows must fit inside ``smax``); pass an explicit ``grid`` to
    override entirely.
    """

    n_symbols: int = 10
    n_days: int = 3
    delta_s: int = 30
    trading_seconds: int = 23_400 // 2
    seed: int = 2008
    n_levels: int | None = None
    base_params: StrategyParams = field(
        default_factory=lambda: StrategyParams(
            m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001
        )
    )
    grid: tuple[StrategyParams, ...] | None = None
    market_config: SyntheticMarketConfig | None = None
    engine: str = "distributed"  # or "sequential"
    ranks: int = 2
    backend: str = "thread"
    clean: bool = True
    #: Optional implementation-shortfall model applied to every trade.
    execution: ExecutionModel | None = None
    #: "abort" fails the sweep on the first bad cell (historical
    #: behaviour); "continue" skips it and records a failure manifest.
    on_error: str = "abort"
    #: Correlation backend: "scalar" is the per-pair oracle, "batch" the
    #: all-pairs kernels of :mod:`repro.corr.batch` — results are
    #: bitwise-identical either way.
    corr_backend: str = "scalar"

    def __post_init__(self) -> None:
        check_corr_backend(self.corr_backend)
        if self.on_error not in ("abort", "continue"):
            raise ValueError(
                f"on_error must be 'abort' or 'continue', got {self.on_error!r}"
            )
        check_positive_int(self.n_symbols, "n_symbols")
        if self.n_symbols < 2:
            raise ValueError("need at least 2 symbols to form a pair")
        check_positive_int(self.n_days, "n_days")
        check_positive_int(self.delta_s, "delta_s")
        check_positive_int(self.ranks, "ranks")
        if self.engine not in ("distributed", "sequential"):
            raise ValueError(
                f"engine must be 'distributed' or 'sequential', got {self.engine!r}"
            )

    def build_grid(self) -> list[StrategyParams]:
        """The parameter sets of this sweep."""
        if self.grid is not None:
            return list(self.grid)
        return paper_parameter_grid(base=self.base_params, n_levels=self.n_levels)

    def build_universe(self) -> Universe:
        """Universe of the first ``n_symbols`` paper tickers."""
        return default_universe(self.n_symbols)

    def build_market(self) -> SyntheticMarket:
        """Synthetic market for the configured universe/session/seed."""
        cfg = self.market_config
        if cfg is None:
            cfg = SyntheticMarketConfig(trading_seconds=self.trading_seconds)
        elif cfg.trading_seconds != self.trading_seconds:
            raise ValueError(
                "market_config.trading_seconds must match SweepConfig.trading_seconds"
            )
        return SyntheticMarket(self.build_universe(), cfg, seed=self.seed)

    def build_provider(self) -> BarProvider:
        """Bar provider over :meth:`build_market` on the configured grid."""
        grid = TimeGrid(self.delta_s, trading_seconds=self.trading_seconds)
        return BarProvider(self.build_market(), grid, clean=self.clean)


def run_sweep(
    config: SweepConfig,
    maronna_config: MaronnaConfig | None = None,
    obs: Obs | None = None,
    failures: list | None = None,
) -> tuple[ResultStore, list[StrategyParams]]:
    """Execute a sweep; returns the result store and its parameter grid.

    The store covers all ``n(n-1)/2`` pairs of the universe, every grid
    entry and days ``0 .. n_days-1``.  With an enabled ``obs``, engine
    telemetry is recorded into it: the sequential engine writes directly;
    the distributed engine gives each rank its own registry and the
    per-rank interchange dicts are absorbed into ``obs`` afterwards.

    With ``config.on_error == "continue"``, failed cells do not abort the
    sweep; pass a list as ``failures`` to collect the resulting
    :class:`~repro.backtest.runner.CellFailure` manifest (sorted by
    (day, pair, parameter index)).
    """
    provider = config.build_provider()
    grid = config.build_grid()
    pairs = list(config.build_universe().pairs())
    days = list(range(config.n_days))
    record = obs is not None and obs.enabled

    if config.engine == "sequential":
        backtester = SequentialBacktester(
            provider,
            share_correlation=True,
            maronna_config=maronna_config,
            execution=config.execution,
            obs=obs if record else None,
            corr_backend=config.corr_backend,
        )
        store = backtester.run(pairs, grid, days, on_error=config.on_error)
        if failures is not None:
            failures.extend(
                sorted(backtester.last_failures, key=lambda f: f.sort_key)
            )
        return store, grid

    def spmd(comm):
        local = None
        if record:
            local = Obs(enabled=True)
            attach_to_comm(comm, local)
        backtester = DistributedBacktester(
            provider,
            maronna_config,
            execution=config.execution,
            corr_backend=config.corr_backend,
        )
        store = backtester.run(
            comm, pairs, grid, days, obs=local, on_error=config.on_error
        )
        return (
            store,
            local.to_dict() if local is not None else None,
            backtester.last_failures,
        )

    results = run_spmd(spmd, size=config.ranks, backend=config.backend)
    if record:
        for rank, (_, rank_dict, _) in enumerate(results):
            if rank_dict is not None:
                obs.absorb_rank(rank, rank_dict)
    if failures is not None:
        failures.extend(results[0][2])
    return results[0][0], grid
