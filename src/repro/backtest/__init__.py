"""Backtesting engines (paper §IV).

Three architectures, mirroring the paper's three approaches:

* **Approach 1** (:mod:`~repro.backtest.matrices`) — precompute the full
  correlation-matrix series, then pick out each pair's entry.  Simple, and
  memory-hungry in exactly the way the paper complains about.
* **Approach 2** (:mod:`~repro.backtest.runner`) — recompute each pair's
  correlation series independently and run the strategy per
  (pair, day, parameter set); the "Matlab" baseline, optionally distributed
  as independent jobs through the SGE simulator.
* **Approach 3** (:mod:`~repro.backtest.distributed`) — the integrated
  MarketMiner solution: one pass over the day's bars computes every pair's
  correlation series once (shared across parameter sets), with pairs
  distributed across MPI ranks and results gathered by the master.

All three produce identical :class:`~repro.backtest.results.ResultStore`
contents (a tested invariant); they differ only in time and memory.
:mod:`~repro.backtest.sweep` drives full pairs × days × parameters studies.
"""

from repro.backtest.distributed import DistributedBacktester
from repro.backtest.matrices import MatrixSeriesBacktester
from repro.backtest.report import StudyReportOptions, study_report
from repro.backtest.results import ResultStore
from repro.backtest.runner import (
    CellFailure,
    SequentialBacktester,
    backtest_pair_day,
)
from repro.backtest.selection import (
    PairScore,
    ParameterScore,
    format_selection_report,
    rank_pairs,
    rank_parameter_sets,
)
from repro.backtest.sweep import SweepConfig, run_sweep
from repro.backtest.walkforward import (
    WalkForwardReport,
    WalkForwardStep,
    format_walk_forward,
    walk_forward,
)

__all__ = [
    "CellFailure",
    "DistributedBacktester",
    "MatrixSeriesBacktester",
    "PairScore",
    "ParameterScore",
    "ResultStore",
    "SequentialBacktester",
    "StudyReportOptions",
    "SweepConfig",
    "WalkForwardReport",
    "WalkForwardStep",
    "backtest_pair_day",
    "format_selection_report",
    "rank_pairs",
    "rank_parameter_sets",
    "run_sweep",
    "study_report",
    "format_walk_forward",
    "walk_forward",
]
