"""Parameter-set and pair selection (paper §VI future work).

"Further experiments will include ... identification of optimal parameter
sets for a given correlation measure" and "Identifying which pairs perform
well is worthy a further investigation."

Both studies are rankings over the completed result store:

* :func:`rank_parameter_sets` — score each parameter set by a performance
  measure aggregated over all pairs (the paper's "summarizing the results
  over all pairs but for a given parameter set indicates which parameters
  are most effective");
* :func:`rank_pairs` — score each pair aggregated over all parameter sets
  ("summarizing over all parameter sets but with a given pair indicates
  that the pair may be a particularly good candidate for pair trading and
  less sensitive to choice of parameters").

Scores: mean total cumulative return (higher better), mean maximum daily
drawdown (lower better), pooled win–loss ratio (higher better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.corr.measures import CorrelationType
from repro.metrics.drawdown import max_drawdown
from repro.metrics.winloss import win_loss_ratio
from repro.strategy.params import StrategyParams

if TYPE_CHECKING:
    from repro.backtest.results import ResultStore

#: measure name -> (score function over (store, subject), higher_is_better)
_MEASURES = ("returns", "drawdown", "winloss")


@dataclass(frozen=True)
class ParameterScore:
    """One parameter set's aggregate performance across all pairs."""

    param_index: int
    params: StrategyParams
    score: float
    n_trades: int


@dataclass(frozen=True)
class PairScore:
    """One pair's aggregate performance across parameter sets."""

    pair: tuple[int, int]
    score: float
    n_trades: int


def _param_score(store: "ResultStore", k: int, measure: str) -> float:
    pairs = store.pairs
    if measure == "returns":
        return float(np.mean([store.total_return(p, k) for p in pairs]))
    if measure == "drawdown":
        return float(
            np.mean([max_drawdown(store.daily_return_path(p, k)) for p in pairs])
        )
    if measure == "winloss":
        pooled = np.concatenate([store.period_returns(p, k) for p in pairs])
        return win_loss_ratio(pooled)
    raise ValueError(f"unknown measure {measure!r}; expected one of {_MEASURES}")


def _pair_score(
    store: "ResultStore", pair: tuple[int, int], ks: list[int], measure: str
) -> float:
    if measure == "returns":
        return float(np.mean([store.total_return(pair, k) for k in ks]))
    if measure == "drawdown":
        return float(
            np.mean([max_drawdown(store.daily_return_path(pair, k)) for k in ks])
        )
    if measure == "winloss":
        pooled = np.concatenate([store.period_returns(pair, k) for k in ks])
        return win_loss_ratio(pooled)
    raise ValueError(f"unknown measure {measure!r}; expected one of {_MEASURES}")


def rank_parameter_sets(
    store: "ResultStore",
    grid: list[StrategyParams],
    measure: str = "returns",
    ctype: CorrelationType | str | None = None,
) -> list[ParameterScore]:
    """Parameter sets ordered best-first by ``measure``.

    With ``ctype`` given, only that treatment's parameter sets compete —
    the paper's "optimal parameter sets for a given correlation measure".
    """
    if measure not in _MEASURES:
        raise ValueError(f"unknown measure {measure!r}; expected one of {_MEASURES}")
    if ctype is not None:
        ctype = CorrelationType.parse(ctype)
    scores = []
    for k, params in enumerate(grid):
        if ctype is not None and params.ctype is not ctype:
            continue
        n_trades = sum(
            store.period_returns(p, k).size for p in store.pairs
        )
        scores.append(
            ParameterScore(
                param_index=k,
                params=params,
                score=_param_score(store, k, measure),
                n_trades=n_trades,
            )
        )
    if not scores:
        raise ValueError(f"no parameter sets for treatment {ctype}")
    reverse = measure != "drawdown"  # lower drawdown is better
    return sorted(scores, key=lambda s: s.score, reverse=reverse)


def rank_pairs(
    store: "ResultStore",
    grid: list[StrategyParams],
    measure: str = "returns",
    ctype: CorrelationType | str | None = None,
) -> list[PairScore]:
    """Pairs ordered best-first by ``measure`` aggregated over levels."""
    if measure not in _MEASURES:
        raise ValueError(f"unknown measure {measure!r}; expected one of {_MEASURES}")
    if ctype is not None:
        ctype = CorrelationType.parse(ctype)
    ks = [
        k
        for k, params in enumerate(grid)
        if ctype is None or params.ctype is ctype
    ]
    if not ks:
        raise ValueError(f"no parameter sets for treatment {ctype}")
    scores = []
    for pair in store.pairs:
        n_trades = sum(store.period_returns(pair, k).size for k in ks)
        scores.append(
            PairScore(
                pair=pair,
                score=_pair_score(store, pair, ks, measure),
                n_trades=n_trades,
            )
        )
    reverse = measure != "drawdown"
    return sorted(scores, key=lambda s: s.score, reverse=reverse)


def format_selection_report(
    param_scores: list[ParameterScore],
    pair_scores: list[PairScore],
    measure: str,
    top: int = 5,
    symbols: tuple[str, ...] | None = None,
) -> str:
    """Render the two rankings as a fixed-width report."""
    lines = [f"Top parameter sets by {measure}:"]
    for s in param_scores[:top]:
        lines.append(
            f"  k={s.param_index:2d} score={s.score:+.5f} "
            f"trades={s.n_trades:5d}  {s.params.label()}"
        )
    lines.append(f"\nTop pairs by {measure}:")
    for s in pair_scores[:top]:
        if symbols is not None:
            name = f"{symbols[s.pair[0]]}/{symbols[s.pair[1]]}"
        else:
            name = f"({s.pair[0]}, {s.pair[1]})"
        lines.append(
            f"  {name:<12} score={s.score:+.5f} trades={s.n_trades:5d}"
        )
    return "\n".join(lines)
