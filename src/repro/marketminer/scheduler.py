"""The MarketMiner runtime: place components on ranks, route, run, drain.

Execution model (per SPMD rank):

1. The workflow DAG is contracted onto the communicator's ranks
   (:func:`repro.mpi.topology.contract_dag`, weighted by component
   weights) — identically on every rank, so routing tables agree without
   communication.
2. Each rank drives its local *source* components to completion; every
   ``emit`` routes either synchronously to a local component or as a
   message through the MPI substrate to the destination's host rank.
3. End-of-stream tokens propagate shutdown: when a source finishes, or a
   component has received EOS on every inbound edge, it is stopped
   (``on_stop``, which may still emit) and forwards EOS on its outbound
   edges.  Per-(rank, rank) FIFO delivery guarantees EOS arrives after
   the data that preceded it.
4. A rank leaves its receive loop once all its components have stopped;
   a final all-gather assembles every component's ``result()`` on every
   rank.

The model is deadlock-free because sends are buffered (never block) and
every edge is guaranteed exactly one EOS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.marketminer.component import Context
from repro.marketminer.graph import GraphSpec, Workflow
from repro.mpi.api import Comm
from repro.mpi.topology import RankMap, contract_dag
from repro.obs import Obs, build_report, ensure_obs

#: Tag for all workflow traffic (collectives use negative tags).
DATA_TAG = 1

_DATA = "data"
_EOS = "eos"


@dataclass(frozen=True)
class PlacementReport:
    """Static view of a component→rank placement, for analysis tooling.

    ``loads[r]`` is the accumulated declared weight on rank ``r`` — the
    quantity the placement heuristic balances and the graph linter's
    rank-budget rule audits.
    """

    size: int
    assignment: dict[str, int]
    loads: tuple[float, ...]

    def components_of(self, rank: int) -> tuple[str, ...]:
        """Components hosted on ``rank``, in placement order."""
        return tuple(c for c, r in self.assignment.items() if r == rank)

    def idle_ranks(self) -> tuple[int, ...]:
        """Ranks that host no component at all."""
        hosted = set(self.assignment.values())
        return tuple(r for r in range(self.size) if r not in hosted)


def placement_report(
    spec: GraphSpec | Workflow, size: int
) -> PlacementReport:
    """Compute the deterministic placement a runner of ``size`` ranks uses.

    Accepts either a built :class:`Workflow` or its plain-data
    :class:`GraphSpec`; the graph must be acyclic (the same precondition
    the runtime has).
    """
    if isinstance(spec, Workflow):
        spec = spec.spec()
    weights = {name: c.weight for name, c in spec.components.items()}
    rank_map = contract_dag(spec.to_networkx(), size, weights=weights)
    loads = [0.0] * size
    assignment = dict(rank_map.assignment)
    for name, rank in assignment.items():
        loads[rank] += weights.get(name, 1.0)
    return PlacementReport(
        size=size, assignment=assignment, loads=tuple(loads)
    )


class WorkflowRunner:
    """Runs a validated workflow over a communicator, SPMD."""

    def __init__(self, workflow: Workflow):
        workflow.validate()
        self.workflow = workflow

    def rank_map(self, size: int) -> RankMap:
        """Deterministic component→rank placement for ``size`` ranks."""
        weights = {
            name: comp.weight for name, comp in self.workflow.components.items()
        }
        return contract_dag(self.workflow.to_networkx(), size, weights=weights)

    def run(
        self,
        comm: Comm,
        collect_stats: bool = False,
        obs_enabled: bool = False,
        pause: bool = False,
        fault_plan=None,
        fault_attempt: int = 0,
        flight_dump: "str | None" = None,
        obs_hook=None,
    ) -> dict[str, Any]:
        """Execute the workflow; every rank returns all component results.

        With ``collect_stats=True`` the result dict gains a ``"_runtime"``
        entry: per-rank counts of locally-dispatched vs cross-rank
        messages — the communication profile of the placement.

        With ``obs_enabled=True`` (or an enabled :class:`repro.obs.Obs`
        already attached to the communicator) each rank records full
        pipeline telemetry — handler latency histograms, per-port emit
        counters, end-of-stream timing, MPI traffic, a span tree — and the
        result dict gains an ``"_obs"`` entry holding the merged
        cross-rank report (identical on every rank; merged through the
        same allgather path as the component results).

        With ``pause=True`` the run is an *epoch*: end-of-stream calls
        ``on_pause`` instead of ``on_stop`` (no end-of-session
        finalisation), and the result dict gains a ``"_snapshots"`` entry
        mapping every stateful component to its checkpoint — the EOS
        drain guarantees the snapshots form a consistent cut.

        With a ``fault_plan`` (see :mod:`repro.faults.plan`), every rank
        attaches a :class:`~repro.faults.injector.FaultInjector` for
        ``fault_attempt`` to the communicator for the duration of the run
        and the result dict gains a ``"_faults"`` entry: the per-rank
        deterministic fault event logs.

        With ``flight_dump`` set to a directory, every rank keeps a
        flight recorder (implies observability) and dumps its event ring
        to ``rank<r>-attempt<a>.jsonl`` there — with the failure's class
        name as the reason when the run dies, ``"end"`` when it
        completes.  ``obs_hook(rank, obs)``, when given, is called with
        each rank's live obs handle as the rank starts — the seam the
        ``repro top`` hub registers through.
        """
        obs = ensure_obs(comm, obs_enabled or flight_dump is not None)
        if flight_dump is not None and obs.flight is None:
            from repro.obs.live.flight import FlightRecorder

            obs.flight = FlightRecorder(rank=comm.rank)
        if obs_hook is not None:
            obs_hook(comm.rank, obs)
        injector = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(
                fault_plan, comm.rank, attempt=fault_attempt, obs=obs
            )
            comm.attach_faults(injector)
        try:
            runtime = _RankRuntime(
                self.workflow, comm, self.rank_map(comm.size), obs=obs,
                pause=pause,
            )
            result = runtime.run(collect_stats=collect_stats, injector=injector)
        except BaseException as exc:
            if flight_dump is not None and obs.flight is not None:
                self._dump_flight(
                    obs, comm, flight_dump, fault_attempt,
                    reason=type(exc).__name__,
                )
            raise
        finally:
            if injector is not None:
                comm.attach_faults(None)
        if flight_dump is not None and obs.flight is not None:
            self._dump_flight(obs, comm, flight_dump, fault_attempt, "end")
        return result

    @staticmethod
    def _dump_flight(obs, comm, directory, attempt: int, reason: str) -> None:
        from pathlib import Path

        obs.flight.dump_jsonl(
            Path(directory) / f"rank{comm.rank}-attempt{attempt}.jsonl",
            reason=reason,
        )


class _RankRuntime:
    """Per-rank execution state."""

    def __init__(
        self,
        workflow: Workflow,
        comm: Comm,
        rank_map: RankMap,
        obs: Obs | None = None,
        pause: bool = False,
    ):
        self.workflow = workflow
        self.comm = comm
        self.rank_map = rank_map
        self.obs = obs if obs is not None else Obs(enabled=False)
        self.pause = pause
        self.local = {
            name: workflow.component(name)
            for name in rank_map.components_of(comm.rank)
        }
        # Routing: (component, out_port) -> [(dst, dst_port, dst_rank)].
        self.routes: dict[tuple[str, str], list[tuple[str, str, int]]] = {}
        for e in workflow.edges:
            self.routes.setdefault((e.src, e.src_port), []).append(
                (e.dst, e.dst_port, rank_map.rank_of(e.dst))
            )
        self.eos_needed = {
            name: len(workflow.in_edges(name)) for name in workflow.components
        }
        self.eos_seen: dict[str, int] = {name: 0 for name in self.local}
        self.stopped: set[str] = set()
        self.contexts = {
            name: Context(name, self._emit, obs=self.obs) for name in self.local
        }
        self.messages_local = 0
        self.messages_remote = 0
        # Per-component accumulated handler time: name -> [wall, cpu, calls].
        self._handler_time: dict[str, list[float]] = {
            name: [0.0, 0.0, 0] for name in self.local
        }
        self._t_start = time.perf_counter()

    def _timed_handler(self, name: str, hist_suffix: str, fn, *args) -> None:
        """Run one component handler, recording latency and totals."""
        t0 = time.perf_counter()
        c0 = time.process_time()
        fn(*args)
        wall = time.perf_counter() - t0
        cpu = time.process_time() - c0
        acc = self._handler_time[name]
        acc[0] += wall
        acc[1] += cpu
        acc[2] += 1
        self.obs.metrics.histogram(
            f"component.{name}.{hist_suffix}.seconds"
        ).observe(wall)

    # -- emission & dispatch -------------------------------------------------

    def _emit(self, src: str, port: str, payload: Any) -> None:
        if src in self.stopped:
            raise RuntimeError(
                f"component {src!r} emitted after it was stopped"
            )
        comp = self.workflow.component(src)
        if port not in comp.output_ports:
            raise ValueError(
                f"{src!r} emitted on undeclared port {port!r} "
                f"(has {list(comp.output_ports)})"
            )
        if self.obs.enabled:
            self.obs.metrics.counter(f"component.{src}.emit[{port}]").inc()
            flight = self.obs.flight
            if flight is not None:
                flight.record_emit(src, port)
        for dst, dst_port, dst_rank in self.routes.get((src, port), []):
            if dst_rank == self.comm.rank:
                self.messages_local += 1
                self._deliver_data(dst, dst_port, payload)
            else:
                self.messages_remote += 1
                self.comm.send((_DATA, dst, dst_port, payload), dst_rank, DATA_TAG)

    def _deliver_data(self, dst: str, dst_port: str, payload: Any) -> None:
        if dst in self.stopped:
            raise RuntimeError(
                f"data for stopped component {dst!r} on port {dst_port!r} "
                f"(EOS protocol violation)"
            )
        comp = self.local[dst]
        if self.obs.enabled:
            self._timed_handler(
                dst, "on_message", comp.on_message,
                self.contexts[dst], dst_port, payload,
            )
        else:
            comp.on_message(self.contexts[dst], dst_port, payload)

    def _deliver_eos(self, dst: str) -> None:
        self.eos_seen[dst] += 1
        if self.eos_seen[dst] > self.eos_needed[dst]:
            raise RuntimeError(f"component {dst!r} received too many EOS tokens")
        if self.eos_seen[dst] == self.eos_needed[dst]:
            self._stop_component(dst)

    def _stop_component(self, name: str) -> None:
        comp = self.local[name]
        # An epoch boundary quiesces (on_pause) instead of finalising.
        handler = comp.on_pause if self.pause else comp.on_stop
        suffix = "on_pause" if self.pause else "on_stop"
        if self.obs.enabled:
            self._timed_handler(name, suffix, handler, self.contexts[name])
            self.obs.metrics.gauge(f"component.{name}.eos_seconds").set(
                time.perf_counter() - self._t_start
            )
        else:
            handler(self.contexts[name])
        self.stopped.add(name)
        # Forward one EOS per outbound edge, after any on_stop emissions.
        for port in comp.output_ports:
            for dst, _dst_port, dst_rank in self.routes.get((name, port), []):
                if dst_rank == self.comm.rank:
                    self._deliver_eos(dst)
                else:
                    self.comm.send((_EOS, dst, None, None), dst_rank, DATA_TAG)

    # -- main loop ---------------------------------------------------------------

    def run(self, collect_stats: bool = False, injector=None) -> dict[str, Any]:
        session_span = self.obs.trace.span(
            "session", rank=self.comm.rank, components=len(self.local)
        )
        with session_span as root:
            # Phase 1: drive local sources (deterministic name order).
            for name in sorted(self.local):
                comp = self.local[name]
                if comp.is_source:
                    if self.obs.enabled:
                        self._timed_handler(
                            name, "generate", comp.generate, self.contexts[name]
                        )
                    else:
                        comp.generate(self.contexts[name])
                    self._stop_component(name)

            # Phase 2: pump remote messages until every local component
            # stopped.
            while len(self.stopped) < len(self.local):
                kind, dst, dst_port, payload = self.comm.recv(tag=DATA_TAG)
                if dst not in self.local:
                    raise RuntimeError(
                        f"rank {self.comm.rank} received traffic for "
                        f"non-local component {dst!r}"
                    )
                if kind == _DATA:
                    self._deliver_data(dst, dst_port, payload)
                elif kind == _EOS:
                    self._deliver_eos(dst)
                else:  # pragma: no cover - protocol corruption
                    raise RuntimeError(f"unknown message kind {kind!r}")

            if self.obs.enabled:
                # One synthetic span per local component, in deterministic
                # name order, parented under this rank's session span —
                # the per-rank slice of the Figure-1 DAG.
                for name in sorted(self.local):
                    wall, cpu, calls = self._handler_time[name]
                    self.obs.trace.add_span(
                        name,
                        wall,
                        cpu,
                        parent=root.id,
                        rank=self.comm.rank,
                        invocations=calls,
                    )

        # Phase 3: assemble results everywhere.
        local_results = {name: comp.result() for name, comp in self.local.items()}
        merged: dict[str, Any] = {}
        parts = self.comm.allgather(local_results)
        for part in parts:
            merged.update(part)
        if self.pause:
            # Checkpoint: the EOS drain above guarantees no in-flight
            # traffic, so the snapshots are a consistent cut of the
            # session at the epoch boundary.
            local_snaps = {}
            for name, comp in self.local.items():
                snap = comp.snapshot()
                if snap is not None:
                    local_snaps[name] = snap
            snapshot_parts = self.comm.allgather(local_snaps)
            checkpoint: dict[str, Any] = {}
            for part in snapshot_parts:
                checkpoint.update(part)
            merged["_snapshots"] = checkpoint
            flight = self.obs.flight
            if flight is not None:
                flight.record_checkpoint()
        if injector is not None:
            event_parts = self.comm.allgather(list(injector.events))
            merged["_faults"] = {
                rank: events for rank, events in enumerate(event_parts)
            }
        if collect_stats:
            stats = self.comm.allgather(
                {
                    "messages_local": self.messages_local,
                    "messages_remote": self.messages_remote,
                    "components": sorted(map(str, self.local)),
                }
            )
            merged["_runtime"] = {rank: s for rank, s in enumerate(stats)}
        if self.obs.enabled:
            # Merge per-rank registries/traces over the same gather path
            # the results used; every rank ends with the identical report.
            rank_dicts = self.comm.allgather(self.obs.to_dict())
            merged["_obs"] = build_report(dict(enumerate(rank_dicts)))
        return merged
