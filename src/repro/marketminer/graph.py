"""Workflow construction and validation.

A :class:`Workflow` is a set of named components plus directed edges
between output and input ports.  Validation enforces the properties the
runtime relies on: the component graph is a DAG, every edge references
declared ports, every non-source component is reachable from a source,
and every input port has at least one inbound edge (a silent port would
hold its component's end-of-stream forever).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.marketminer.component import Component


@dataclass(frozen=True, slots=True)
class Edge:
    """One connection: (src component, src port) → (dst component, dst port)."""

    src: str
    src_port: str
    dst: str
    dst_port: str


class Workflow:
    """A named DAG of components."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._components: dict[str, Component] = {}
        self._edges: list[Edge] = []

    # -- construction -------------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a component; names must be unique."""
        if component.name in self._components:
            raise ValueError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        return component

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> None:
        """Connect an output port to an input port."""
        src_c = self._require(src)
        dst_c = self._require(dst)
        if src_port not in src_c.output_ports:
            raise ValueError(
                f"{src!r} has no output port {src_port!r} "
                f"(has {list(src_c.output_ports)})"
            )
        if dst_port not in dst_c.input_ports:
            raise ValueError(
                f"{dst!r} has no input port {dst_port!r} "
                f"(has {list(dst_c.input_ports)})"
            )
        edge = Edge(src, src_port, dst, dst_port)
        if edge in self._edges:
            raise ValueError(f"duplicate edge {edge}")
        self._edges.append(edge)

    def _require(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(f"unknown component {name!r}") from None

    # -- inspection -----------------------------------------------------------

    @property
    def components(self) -> dict[str, Component]:
        return dict(self._components)

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges)

    def component(self, name: str) -> Component:
        return self._require(name)

    def out_edges(self, name: str, port: str | None = None) -> list[Edge]:
        return [
            e
            for e in self._edges
            if e.src == name and (port is None or e.src_port == port)
        ]

    def in_edges(self, name: str) -> list[Edge]:
        return [e for e in self._edges if e.dst == name]

    def to_networkx(self) -> nx.DiGraph:
        """Component-level digraph (ports collapsed), nodes carry weights."""
        g = nx.DiGraph()
        for name, comp in self._components.items():
            g.add_node(name, weight=comp.weight)
        for e in self._edges:
            g.add_edge(e.src, e.dst)
        return g

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on any structural defect."""
        if not self._components:
            raise ValueError("workflow has no components")
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise ValueError(f"workflow contains a cycle: {cycle}")

        sources = [c.name for c in self._components.values() if c.is_source]
        if not sources:
            raise ValueError("workflow needs at least one source component")

        connected_inputs: dict[str, set[str]] = {}
        for e in self._edges:
            connected_inputs.setdefault(e.dst, set()).add(e.dst_port)
        for comp in self._components.values():
            missing = set(comp.input_ports) - connected_inputs.get(comp.name, set())
            if missing:
                raise ValueError(
                    f"component {comp.name!r}: input port(s) {sorted(missing)} "
                    f"have no inbound edge"
                )

        reachable = set(sources)
        for src in sources:
            reachable |= nx.descendants(g, src)
        unreachable = set(self._components) - reachable
        if unreachable:
            raise ValueError(
                f"component(s) unreachable from any source: {sorted(unreachable)}"
            )

    def describe(self) -> str:
        """Human-readable topology listing (used by the Figure-1 bench)."""
        lines = [f"Workflow {self.name!r}:"]
        g = self.to_networkx()
        for name in nx.lexicographical_topological_sort(g, key=str):
            comp = self._components[name]
            kind = "source" if comp.is_source else "component"
            lines.append(f"  [{kind}] {name} (weight={comp.weight:g})")
            for e in self.out_edges(name):
                lines.append(f"      {e.src_port} -> {e.dst}.{e.dst_port}")
        return "\n".join(lines)
