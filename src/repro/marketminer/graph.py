"""Workflow construction and validation.

A :class:`Workflow` is a set of named components plus directed edges
between output and input ports.  Validation enforces the properties the
runtime relies on: the component graph is a DAG, every edge references
declared ports, every non-source component is reachable from a source,
and every input port has at least one inbound edge (a silent port would
hold its component's end-of-stream forever).

For static analysis the workflow exports a plain-data view of itself
(:meth:`Workflow.spec`, a :class:`GraphSpec` of :class:`ComponentSpec`
rows plus edges).  A :class:`GraphSpec` can also be constructed directly
— including deliberately malformed ones — which is what the graph linter
in :mod:`repro.analysis.graphlint` operates on, so defective graphs can
be *diagnosed* rather than rejected at construction time the way
``Workflow`` rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.marketminer.component import Component


@dataclass(frozen=True, slots=True)
class Edge:
    """One connection: (src component, src port) → (dst component, dst port).

    ``tag`` is an optional declared MPI tag for the edge's cross-rank
    traffic.  The runtime routes data by payload header on one shared tag,
    so the field is purely declarative — it documents the intended tag
    layout of an equivalent raw-MPI wiring and feeds the graph linter's
    tag-collision rule.  ``None`` means "payload-routed" (the default),
    which can never collide.
    """

    src: str
    src_port: str
    dst: str
    dst_port: str
    tag: int | None = None

    @property
    def endpoints(self) -> tuple[str, str, str, str]:
        """The logical identity of the edge (ignores the declared tag)."""
        return (self.src, self.src_port, self.dst, self.dst_port)


@dataclass(frozen=True)
class ComponentSpec:
    """Plain-data contract of one component, as seen by the graph linter."""

    name: str
    input_ports: tuple[str, ...] = ()
    output_ports: tuple[str, ...] = ()
    weight: float = 1.0
    #: Per-input-port cap on inbound edge count (ports absent = unbounded).
    max_fan_in: dict[str, int] = field(default_factory=dict)
    #: Per-output-port cap on outbound edge count (ports absent = unbounded).
    max_fan_out: dict[str, int] = field(default_factory=dict)

    @property
    def is_source(self) -> bool:
        return not self.input_ports


@dataclass(frozen=True)
class GraphSpec:
    """A workflow reduced to checkable data: component contracts + edges.

    Unlike :class:`Workflow`, construction performs no validation, so a
    spec may describe a cyclic, orphaned or tag-colliding graph — the
    point is to let :mod:`repro.analysis.graphlint` report *all* defects
    as diagnostics instead of stopping at the first.
    """

    name: str
    components: dict[str, ComponentSpec]
    edges: tuple[Edge, ...]

    def in_edges(self, name: str) -> list[Edge]:
        return [e for e in self.edges if e.dst == name]

    def out_edges(self, name: str) -> list[Edge]:
        return [e for e in self.edges if e.src == name]

    def to_networkx(self) -> nx.DiGraph:
        """Component-level digraph (ports collapsed), nodes carry weights."""
        g = nx.DiGraph()
        for name, comp in self.components.items():
            g.add_node(name, weight=comp.weight)
        for e in self.edges:
            if e.src in self.components and e.dst in self.components:
                g.add_edge(e.src, e.dst)
        return g


class Workflow:
    """A named DAG of components."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._components: dict[str, Component] = {}
        self._edges: list[Edge] = []

    # -- construction -------------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a component; names must be unique."""
        if component.name in self._components:
            raise ValueError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        return component

    def connect(
        self,
        src: str,
        src_port: str,
        dst: str,
        dst_port: str,
        tag: int | None = None,
    ) -> None:
        """Connect an output port to an input port.

        ``tag`` optionally declares the MPI tag an equivalent raw-MPI
        wiring would carry this edge on (see :class:`Edge`); it must be a
        valid user tag (>= 0).
        """
        src_c = self._require(src)
        dst_c = self._require(dst)
        if src_port not in src_c.output_ports:
            raise ValueError(
                f"{src!r} has no output port {src_port!r} "
                f"(has {list(src_c.output_ports)})"
            )
        if dst_port not in dst_c.input_ports:
            raise ValueError(
                f"{dst!r} has no input port {dst_port!r} "
                f"(has {list(dst_c.input_ports)})"
            )
        if tag is not None and tag < 0:
            raise ValueError(f"edge tags must be >= 0, got {tag}")
        edge = Edge(src, src_port, dst, dst_port, tag=tag)
        if any(e.endpoints == edge.endpoints for e in self._edges):
            raise ValueError(f"duplicate edge {edge}")
        self._edges.append(edge)

    def _require(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(f"unknown component {name!r}") from None

    # -- inspection -----------------------------------------------------------

    @property
    def components(self) -> dict[str, Component]:
        return dict(self._components)

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges)

    def component(self, name: str) -> Component:
        return self._require(name)

    def out_edges(self, name: str, port: str | None = None) -> list[Edge]:
        return [
            e
            for e in self._edges
            if e.src == name and (port is None or e.src_port == port)
        ]

    def in_edges(self, name: str) -> list[Edge]:
        return [e for e in self._edges if e.dst == name]

    def to_networkx(self) -> nx.DiGraph:
        """Component-level digraph (ports collapsed), nodes carry weights."""
        g = nx.DiGraph()
        for name, comp in self._components.items():
            g.add_node(name, weight=comp.weight)
        for e in self._edges:
            g.add_edge(e.src, e.dst)
        return g

    def spec(self) -> GraphSpec:
        """This workflow as a plain-data :class:`GraphSpec` for analysis."""
        return GraphSpec(
            name=self.name,
            components={
                name: ComponentSpec(
                    name=name,
                    input_ports=comp.input_ports,
                    output_ports=comp.output_ports,
                    weight=comp.weight,
                    max_fan_in=dict(comp.max_fan_in),
                    max_fan_out=dict(comp.max_fan_out),
                )
                for name, comp in self._components.items()
            },
            edges=tuple(self._edges),
        )

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on any structural defect."""
        if not self._components:
            raise ValueError("workflow has no components")
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise ValueError(f"workflow contains a cycle: {cycle}")

        sources = [c.name for c in self._components.values() if c.is_source]
        if not sources:
            raise ValueError("workflow needs at least one source component")

        connected_inputs: dict[str, set[str]] = {}
        for e in self._edges:
            connected_inputs.setdefault(e.dst, set()).add(e.dst_port)
        for comp in self._components.values():
            missing = set(comp.input_ports) - connected_inputs.get(comp.name, set())
            if missing:
                raise ValueError(
                    f"component {comp.name!r}: input port(s) {sorted(missing)} "
                    f"have no inbound edge"
                )

        reachable = set(sources)
        for src in sources:
            reachable |= nx.descendants(g, src)
        unreachable = set(self._components) - reachable
        if unreachable:
            raise ValueError(
                f"component(s) unreachable from any source: {sorted(unreachable)}"
            )

    def describe(self) -> str:
        """Human-readable topology listing (used by the Figure-1 bench)."""
        lines = [f"Workflow {self.name!r}:"]
        g = self.to_networkx()
        for name in nx.lexicographical_topological_sort(g, key=str):
            comp = self._components[name]
            kind = "source" if comp.is_source else "component"
            lines.append(f"  [{kind}] {name} (weight={comp.weight:g})")
            for e in self.out_edges(name):
                lines.append(f"      {e.src_port} -> {e.dst}.{e.dst_port}")
        return "\n".join(lines)
