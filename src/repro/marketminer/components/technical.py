"""Technical analysis component: interval log-returns (Figure 1).

Consumes bar close vectors, emits the 1-period log-return vector once two
consecutive fully-priced rows exist: ``(s, returns_row)`` where
``returns_row[i] = log(P_i(s) / P_i(s-1))``.  Intervals whose row (or
predecessor) still contains NaN closes (symbols that have not yet quoted)
are skipped — the correlation engine only ever sees finite rows.
"""

from __future__ import annotations

import numpy as np

from repro.marketminer.component import Component, Context


class TechnicalAnalysisComponent(Component):
    """Log-returns over consecutive fully-priced close rows."""

    def __init__(self, name: str = "technical"):
        super().__init__(
            name=name, input_ports=("closes",), output_ports=("returns",)
        )
        self._prev: np.ndarray | None = None
        self._prev_s: int | None = None
        self._emitted = 0

    def on_stop(self, ctx: Context) -> None:
        ctx.obs.metrics.counter(f"pipeline.{self.name}.returns_rows").inc(
            self._emitted
        )

    def on_message(self, ctx: Context, port: str, payload) -> None:
        s, closes = payload
        closes = np.asarray(closes, dtype=float)
        if not np.all(np.isfinite(closes)):
            ctx.obs.metrics.counter(
                f"pipeline.{self.name}.nan_head_skipped"
            ).inc()
            return  # pre-first-quote head; skip until the row is complete
        if np.any(closes <= 0):
            raise ValueError(f"{self.name}: non-positive close at interval {s}")
        if self._prev is not None and self._prev_s == s - 1:
            ctx.emit("returns", (s, np.log(closes / self._prev)))
            self._emitted += 1
        self._prev = closes
        self._prev_s = s

    def result(self) -> dict:
        return {"returns_emitted": self._emitted}

    def snapshot(self) -> dict:
        return {
            "prev": None if self._prev is None else self._prev.copy(),
            "prev_s": self._prev_s,
            "emitted": self._emitted,
        }

    def restore(self, state: dict) -> None:
        prev = state["prev"]
        self._prev = None if prev is None else np.array(prev, copy=True)
        self._prev_s = state["prev_s"]
        self._emitted = state["emitted"]
