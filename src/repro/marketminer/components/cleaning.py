"""Streaming quote cleaning: the TCP-like filter as a pipeline stage.

Raw data "needs to be cleaned before being analyzed" (paper §III); in the
pipeline this happens between the adapter and the bar accumulator, one
:class:`~repro.clean.filters.TcpLikeFilter` per symbol, preserving the
per-interval message shape.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.clean.filters import TcpLikeFilter
from repro.marketminer.component import Component, Context


class CleaningComponent(Component):
    """Per-symbol TCP-like filtering of interval quote batches.

    Input ``quotes``: ``(s, records)``; output ``quotes``: same shape,
    with crossed quotes and filter-rejected quotes removed.  ``result()``
    reports the disposition counts.
    """

    def __init__(
        self,
        n_symbols: int,
        name: str = "cleaning",
        k: float = 6.0,
        warmup: int = 20,
    ):
        super().__init__(
            name=name, input_ports=("quotes",), output_ports=("quotes",)
        )
        if n_symbols <= 0:
            raise ValueError(f"n_symbols must be positive, got {n_symbols}")
        self.n_symbols = n_symbols
        self._filters = [
            TcpLikeFilter(k=k, warmup=warmup) for _ in range(n_symbols)
        ]
        self._total = 0
        self._rejected_outlier = 0
        self._rejected_crossed = 0

    def on_message(self, ctx: Context, port: str, payload) -> None:
        s, records = payload
        self._total += int(records.size)
        if records.size == 0:
            ctx.emit("quotes", (s, records))
            return
        keep = np.zeros(records.size, dtype=bool)
        bam = 0.5 * (records["bid"] + records["ask"])
        crossed = records["bid"] >= records["ask"]
        for idx in range(records.size):
            if crossed[idx]:
                self._rejected_crossed += 1
                continue
            symbol = int(records["symbol"][idx])
            if not 0 <= symbol < self.n_symbols:
                raise ValueError(
                    f"symbol index {symbol} outside [0, {self.n_symbols})"
                )
            if self._filters[symbol].update(float(bam[idx])):
                keep[idx] = True
            else:
                self._rejected_outlier += 1
        ctx.emit("quotes", (s, records[keep]))

    def on_stop(self, ctx: Context) -> None:
        m = ctx.obs.metrics
        m.counter(f"pipeline.{self.name}.quotes_seen").inc(self._total)
        m.counter(f"pipeline.{self.name}.rejected_outlier").inc(
            self._rejected_outlier
        )
        m.counter(f"pipeline.{self.name}.rejected_crossed").inc(
            self._rejected_crossed
        )

    def result(self) -> dict:
        return {
            "total": self._total,
            "rejected_outlier": self._rejected_outlier,
            "rejected_crossed": self._rejected_crossed,
        }

    def snapshot(self) -> dict:
        return {
            "filters": copy.deepcopy(self._filters),
            "total": self._total,
            "rejected_outlier": self._rejected_outlier,
            "rejected_crossed": self._rejected_crossed,
        }

    def restore(self, state: dict) -> None:
        self._filters = copy.deepcopy(state["filters"])
        self._total = state["total"]
        self._rejected_outlier = state["rejected_outlier"]
        self._rejected_crossed = state["rejected_crossed"]
