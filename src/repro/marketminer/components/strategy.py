"""The Pair Trading Strategy component (Figure 1).

Joins the two analytics streams — bar closes ("Quotes & Prices") and
correlation matrices — and drives one
:class:`~repro.strategy.engine.PairStrategy` state machine per
(pair, parameter set).  Emits order requests as positions open and close
(the stream the order sink aggregates into baskets) and trade records as
round trips complete.

Stream alignment: the close row for interval ``s`` and the correlation
matrix for ``s`` arrive on independent paths with no ordering guarantee
between them, so intervals are processed in order once their inputs are
complete.  During the correlation warm-up (the first ``h + M`` intervals,
where ``h`` is the NaN head of a live stream — symbols that have not yet
quoted) no matrix will ever arrive and the strategies step with NaN
correlation, exactly like the batch engine's warm-up.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.faults.policy import DegradePolicy, StaleCorr
from repro.marketminer.component import Component, Context
from repro.strategy.engine import PairStrategy, Trade
from repro.strategy.params import StrategyParams
from repro.strategy.portfolio import OrderRequest


class PairTradingComponent(Component):
    """Market-wide pair trading over closes + correlation streams.

    With a :class:`~repro.faults.policy.DegradePolicy`, intervals whose
    correlation arrives as :class:`~repro.faults.policy.StaleCorr` are
    stepped in degraded mode: no new entries, and (when the policy says
    ``flatten``) open positions are closed with reason ``DEGRADED``.
    Without a policy a stale matrix is treated as missing correlation
    (NaN), which already suppresses entries.
    """

    def __init__(
        self,
        pairs: list[tuple[int, int]],
        grid: list[StrategyParams],
        smax: int,
        m: int,
        name: str = "pair_trading",
        weight: float = 4.0,
        degrade: DegradePolicy | None = None,
    ):
        super().__init__(
            name=name,
            input_ports=("closes", "corr"),
            output_ports=("orders", "trades"),
            weight=weight,
        )
        if not pairs or not grid:
            raise ValueError("need at least one pair and one parameter set")
        if smax <= 0:
            raise ValueError(f"smax must be positive, got {smax}")
        mset = {p.m for p in grid}
        if mset != {m}:
            raise ValueError(
                f"grid must share the correlation window m={m}, found {mset}"
            )
        self.pairs = [tuple(sorted(p)) for p in pairs]
        if len(set(self.pairs)) != len(self.pairs):
            raise ValueError("duplicate pairs")
        self.grid = list(grid)
        self.smax = smax
        self.m = m

        #: Optional mapping from this component's local parameter indices
        #: to a study's global ones (set by multi-spec workflow builders;
        #: surfaced through ``result()``).
        self.param_indices: tuple[int, ...] | None = None
        self.degrade = degrade
        self._degraded = 0  # intervals stepped on stale correlation
        self._closes: dict[int, np.ndarray] = {}
        #: Per-interval correlation state: a full (n, n) matrix, or a dict
        #: of pair blocks still being joined from several engines.
        self._corr: dict[int, np.ndarray | dict] = {}
        self._pair_set = set(self.pairs)
        self._next_s = 0  # next interval to process
        self._head: int | None = None  # first fully-priced interval
        self._strategies: dict[tuple[tuple[int, int], int], PairStrategy] = {}
        self._trades: dict[tuple[tuple[int, int], int], list[Trade]] = {}
        self._orders_emitted = 0

    # -- message handling ----------------------------------------------------

    def on_message(self, ctx: Context, port: str, payload) -> None:
        s, value = payload
        if port == "closes":
            self._closes[s] = np.asarray(value, dtype=float)
        elif isinstance(value, StaleCorr):
            # A re-served last-good matrix; kept wrapped so the step
            # logic knows this interval runs in degraded mode.
            self._corr[s] = value
        elif isinstance(value, dict):
            # A pair block from one of several parallel engines: join.
            current = self._corr.setdefault(s, {})
            if not isinstance(current, dict):
                raise ValueError(
                    f"{self.name}: mixed matrix and block correlation "
                    f"payloads at interval {s}"
                )
            overlap = current.keys() & value.keys()
            if overlap:
                raise ValueError(
                    f"{self.name}: pair blocks overlap on {sorted(overlap)}"
                )
            current.update(value)
        else:
            self._corr[s] = np.asarray(value, dtype=float)
        self._advance(ctx)

    def on_stop(self, ctx: Context) -> None:
        self._advance(ctx)
        if self._head is not None and self._next_s < self.smax:
            raise RuntimeError(
                f"{self.name}: stream ended at interval {self._next_s} of "
                f"{self.smax}; upstream lost data"
            )
        m = ctx.obs.metrics
        m.counter(f"pipeline.{self.name}.orders").inc(self._orders_emitted)
        m.counter(f"pipeline.{self.name}.trades").inc(
            sum(len(t) for t in self._trades.values())
        )
        m.counter(f"pipeline.{self.name}.strategies").inc(
            len(self._strategies)
        )
        if self.degrade is not None:
            m.counter(f"pipeline.{self.name}.degraded_intervals").inc(
                self._degraded
            )

    def on_pause(self, ctx: Context) -> None:
        # Epoch boundary: drain buffered intervals but skip the
        # end-of-session completeness check and summary counters — the
        # stream resumes after restore().
        self._advance(ctx)

    # -- interval processing ----------------------------------------------------

    def _corr_expected_from(self) -> int | None:
        """First interval for which a correlation matrix will arrive."""
        if self._head is None:
            return None
        return self._head + self.m

    def _advance(self, ctx: Context) -> None:
        while self._next_s < self.smax:
            s = self._next_s
            closes = self._closes.get(s)
            if closes is None:
                return
            if self._head is None:
                if not np.all(np.isfinite(closes)):
                    # NaN head: consume and skip.
                    del self._closes[s]
                    self._next_s += 1
                    continue
                self._head = s
                self._build_strategies()
            expected_from = self._corr_expected_from()
            assert expected_from is not None
            if s >= expected_from and not self._corr_complete(s):
                return  # correlation for s still in flight
            corr = self._corr.pop(s, None)
            del self._closes[s]
            self._next_s += 1
            self._step_all(ctx, s, closes, corr)

    def _corr_complete(self, s: int) -> bool:
        value = self._corr.get(s)
        if value is None:
            return False
        if isinstance(value, dict):
            return self._pair_set <= value.keys()
        return True

    def _build_strategies(self) -> None:
        assert self._head is not None
        local_smax = self.smax - self._head
        for pair in self.pairs:
            for k in range(len(self.grid)):
                self._strategies[(pair, k)] = PairStrategy(self.grid[k], local_smax)
                self._trades[(pair, k)] = []

    def _step_all(
        self,
        ctx: Context,
        s: int,
        closes: np.ndarray,
        corr: np.ndarray | dict | StaleCorr | None,
    ) -> None:
        assert self._head is not None
        s_local = s - self._head
        stale = isinstance(corr, StaleCorr)
        if stale:
            self._degraded += 1
            ctx.obs.metrics.counter(
                f"pipeline.{self.name}.stale_intervals"
            ).inc()
        flatten = stale and self.degrade is not None and self.degrade.flatten
        for pair in self.pairs:
            i, j = pair
            if corr is None or stale:
                # Degraded (or warm-up) interval: NaN correlation blocks
                # the entry signal by construction.
                c = math.nan
            elif isinstance(corr, dict):
                c = float(corr[pair])
            else:
                c = float(corr[i, j])
            for k in range(len(self.grid)):
                strat = self._strategies[(pair, k)]
                before = strat.open_position
                if flatten:
                    trade = strat.flatten(
                        s_local, float(closes[i]), float(closes[j])
                    )
                else:
                    trade = strat.step(
                        s_local, float(closes[i]), float(closes[j]), c
                    )
                after = strat.open_position
                # Emit under the study-global parameter index so order
                # sinks shared by several spec strategies never collide.
                k_out = self.param_indices[k] if self.param_indices else k
                if trade is not None:
                    self._trades[(pair, k)].append(trade)
                    ctx.emit("trades", (pair, k_out, trade))
                    self._emit_close_orders(ctx, s, pair, k_out, trade, closes)
                if before is None and after is not None:
                    self._emit_open_orders(ctx, s, pair, k_out, after, closes)

    def _emit_open_orders(self, ctx, s, pair, k, position, closes) -> None:
        i, j = pair
        long_sym = pair[position.long_leg]
        short_sym = pair[1 - position.long_leg]
        legs = (
            OrderRequest(
                s=s, symbol=long_sym, shares=position.n_long,
                price=float(closes[long_sym]), pair=pair, param_index=k,
            ),
            OrderRequest(
                s=s, symbol=short_sym, shares=-position.n_short,
                price=float(closes[short_sym]), pair=pair, param_index=k,
            ),
        )
        ctx.emit("orders", ("entry", legs))
        self._orders_emitted += 2

    def _emit_close_orders(self, ctx, s, pair, k, trade: Trade, closes) -> None:
        long_sym = pair[trade.long_leg]
        short_sym = pair[1 - trade.long_leg]
        legs = (
            OrderRequest(
                s=s, symbol=long_sym, shares=-trade.n_long,
                price=float(closes[long_sym]), pair=pair, param_index=k,
            ),
            OrderRequest(
                s=s, symbol=short_sym, shares=trade.n_short,
                price=float(closes[short_sym]), pair=pair, param_index=k,
            ),
        )
        ctx.emit("orders", ("exit", legs))
        self._orders_emitted += 2

    def result(self) -> dict:
        out = {
            "head": self._head,
            "orders_emitted": self._orders_emitted,
            "param_indices": self.param_indices,
            "trades": {key: list(trades) for key, trades in self._trades.items()},
        }
        if self.degrade is not None:
            out["degraded_intervals"] = self._degraded
        return out

    def snapshot(self) -> dict:
        return {
            "closes": copy.deepcopy(self._closes),
            "corr": copy.deepcopy(self._corr),
            "next_s": self._next_s,
            "head": self._head,
            "strategies": copy.deepcopy(self._strategies),
            "trades": copy.deepcopy(self._trades),
            "orders_emitted": self._orders_emitted,
            "degraded": self._degraded,
            "watermark": self._next_s,
        }

    def restore(self, state: dict) -> None:
        self._closes = copy.deepcopy(state["closes"])
        self._corr = copy.deepcopy(state["corr"])
        self._next_s = state["next_s"]
        self._head = state["head"]
        self._strategies = copy.deepcopy(state["strategies"])
        self._trades = copy.deepcopy(state["trades"])
        self._orders_emitted = state["orders_emitted"]
        self._degraded = state["degraded"]
