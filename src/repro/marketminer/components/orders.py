"""The order-request sink: the master side of Figure 1.

Gathers every strategy's trade decisions, applies portfolio risk limits,
and nets accepted orders into per-interval baskets — "aggregating the
results into a single basket, as opposed to many individual trade orders"
for list-based execution (paper §IV, Approach 3).
"""

from __future__ import annotations

import copy

from repro.marketminer.component import Component, Context
from repro.strategy.portfolio import BasketAggregator, OrderRequest, RiskLimits


class OrderSinkComponent(Component):
    """Risk-checks and baskets the order stream; records the trade tape."""

    def __init__(
        self,
        limits: RiskLimits | None = None,
        name: str = "order_sink",
    ):
        super().__init__(name=name, input_ports=("orders", "trades"))
        self._aggregator = BasketAggregator(limits)
        self._accepted: list[OrderRequest] = []
        self._trade_tape: list[tuple] = []
        self._entries_vetoed = 0
        # Pair positions whose entry was vetoed: their exits are dropped too.
        self._vetoed_keys: set[tuple] = set()

    def on_message(self, ctx: Context, port: str, payload) -> None:
        if port == "trades":
            self._trade_tape.append(payload)
            return
        kind, legs = payload
        key = (*legs[0].pair, legs[0].param_index)
        if kind == "entry":
            if self._aggregator.submit_entry(legs):
                self._accepted.extend(legs)
            else:
                self._entries_vetoed += 1
                self._vetoed_keys.add(key)
        elif kind == "exit":
            if key in self._vetoed_keys:
                self._vetoed_keys.discard(key)
                return
            self._aggregator.submit_exit(legs)
            self._accepted.extend(legs)
        else:
            raise ValueError(f"unknown order kind {kind!r}")

    def on_stop(self, ctx: Context) -> None:
        m = ctx.obs.metrics
        m.counter(f"pipeline.{self.name}.accepted_orders").inc(
            len(self._accepted)
        )
        m.counter(f"pipeline.{self.name}.entries_vetoed").inc(
            self._entries_vetoed
        )
        m.gauge(f"pipeline.{self.name}.open_pairs_at_close").set(
            self._aggregator.open_pair_count
        )

    def result(self) -> dict:
        by_interval: dict[int, list[OrderRequest]] = {}
        for order in self._accepted:
            by_interval.setdefault(order.s, []).append(order)
        baskets = {
            s: BasketAggregator.basket(orders) for s, orders in by_interval.items()
        }
        return {
            "accepted_orders": len(self._accepted),
            "entries_vetoed": self._entries_vetoed,
            "open_pairs_at_close": self._aggregator.open_pair_count,
            "gross_notional_at_close": self._aggregator.gross_notional,
            "baskets": baskets,
            "trade_tape": list(self._trade_tape),
        }

    def snapshot(self) -> dict:
        return {
            "aggregator": copy.deepcopy(self._aggregator),
            "accepted": copy.deepcopy(self._accepted),
            "trade_tape": copy.deepcopy(self._trade_tape),
            "entries_vetoed": self._entries_vetoed,
            "vetoed_keys": set(self._vetoed_keys),
        }

    def restore(self, state: dict) -> None:
        self._aggregator = copy.deepcopy(state["aggregator"])
        self._accepted = copy.deepcopy(state["accepted"])
        self._trade_tape = copy.deepcopy(state["trade_tape"])
        self._entries_vetoed = state["entries_vetoed"]
        self._vetoed_keys = set(state["vetoed_keys"])
