"""The Figure-1 component library.

Data adapters (live/file/DB collectors), the quote cleaning filter, the
OHLC bar accumulator, technical analysis (interval returns), the
correlation engine, the pair trading strategy and the order-request sink.
"""

from repro.marketminer.components.bar_accumulator import BarAccumulatorComponent
from repro.marketminer.components.cleaning import CleaningComponent
from repro.marketminer.components.collectors import (
    DbCollector,
    FileCollector,
    LiveCollector,
    QuoteDatabase,
    StoreCollector,
)
from repro.marketminer.components.correlation import CorrelationEngineComponent
from repro.marketminer.components.orders import OrderSinkComponent
from repro.marketminer.components.strategy import PairTradingComponent
from repro.marketminer.components.technical import TechnicalAnalysisComponent

__all__ = [
    "BarAccumulatorComponent",
    "CleaningComponent",
    "CorrelationEngineComponent",
    "DbCollector",
    "FileCollector",
    "LiveCollector",
    "OrderSinkComponent",
    "PairTradingComponent",
    "QuoteDatabase",
    "StoreCollector",
    "TechnicalAnalysisComponent",
]
