"""Data adapters: the left column of Figure 1.

All three collectors emit the same stream shape on their ``quotes``
output port: one message per grid interval, ``(s, records)`` with
``records`` the interval's quote rows (possibly empty) in chronological
order.  Downstream components are therefore adapter-agnostic, which is
the point of the adapter layer.

* :class:`LiveCollector` — "Live Data Feed": pulls a day from a
  :class:`~repro.taq.synthetic.SyntheticMarket` (the stand-in for a
  real-time feed handler);
* :class:`FileCollector` — "Custom TAQ Files": reads a quote CSV written
  by :func:`repro.taq.io.write_taq_csv`;
* :class:`DbCollector` — "MySQL DB": reads from an in-memory
  :class:`QuoteDatabase` keyed by day.
* :class:`StoreCollector` — replays a day from a
  :class:`~repro.store.reader.StoreReader` via the shard-merging
  :class:`~repro.store.replay.ReplayCursor`.

Every collector is *resumable*: ``set_interval_range(start, stop)``
restricts emission to ``[start, stop)`` and the snapshot records the
high-water mark, so the supervisor can replay a session from the last
checkpoint (the sources re-derive their data deterministically, the
store collector seeks its replay cursor).
"""

from __future__ import annotations

import numpy as np

from repro.marketminer.component import Component, Context
from repro.taq.io import read_taq_csv
from repro.taq.synthetic import SyntheticMarket
from repro.taq.types import validate_quote_array
from repro.taq.universe import Universe
from repro.util.timeutil import TimeGrid


def _emit_by_interval(
    ctx: Context,
    records: np.ndarray,
    grid: TimeGrid,
    start: int = 0,
    stop: int | None = None,
) -> None:
    """Slice a chronological quote array into per-interval messages.

    Only intervals in ``[start, stop)`` are emitted (``stop=None`` means
    the end of the grid); the slicing itself is identical either way, so
    a run split into ranges emits bitwise the same messages as one pass.
    """
    stop = grid.smax if stop is None else stop
    boundaries = np.searchsorted(
        records["t"], np.arange(0, grid.smax + 1) * grid.delta_s, side="left"
    )
    ctx.obs.metrics.counter(
        f"pipeline.{ctx.component_name}.quotes_collected"
    ).inc(int(boundaries[stop] - boundaries[start]))
    for s in range(start, stop):
        ctx.emit("quotes", (s, records[boundaries[s]:boundaries[s + 1]]))


class CollectorBase(Component):
    """Shared resumable-range machinery for the Figure-1 collectors."""

    def __init__(self, grid: TimeGrid, name: str):
        super().__init__(name=name, output_ports=("quotes",))
        self.grid = grid
        self._start = 0
        self._stop: int | None = None

    def set_interval_range(self, start: int, stop: int | None = None) -> None:
        """Restrict emission to grid intervals ``[start, stop)``."""
        smax = self.grid.smax
        end = smax if stop is None else stop
        if not 0 <= start <= end <= smax:
            raise ValueError(
                f"{self.name}: interval range [{start}, {end}) outside "
                f"[0, {smax}]"
            )
        self._start = start
        self._stop = stop

    @property
    def interval_range(self) -> tuple[int, int]:
        """The effective ``(start, stop)`` emission range."""
        stop = self.grid.smax if self._stop is None else self._stop
        return self._start, stop

    def snapshot(self) -> dict:
        # The high-water mark: everything below ``stop`` was emitted (or
        # deliberately skipped via the range) by the time of snapshot.
        return {"watermark": self.interval_range[1]}

    def restore(self, state: dict) -> None:
        self.set_interval_range(int(state["watermark"]), None)


class LiveCollector(CollectorBase):
    """Streams one synthetic trading day, interval by interval."""

    def __init__(
        self,
        market: SyntheticMarket,
        grid: TimeGrid,
        day: int = 0,
        name: str = "live_collector",
    ):
        super().__init__(grid, name)
        if grid.trading_seconds > market.config.trading_seconds:
            raise ValueError("grid session longer than the market session")
        self.market = market
        self.day = day

    def generate(self, ctx: Context) -> None:
        quotes = self.market.quotes(self.day)
        # Quotes beyond the last complete interval never trade.
        cutoff = self.grid.smax * self.grid.delta_s
        quotes = quotes[quotes["t"] < cutoff]
        _emit_by_interval(ctx, quotes, self.grid, self._start, self._stop)


class FileCollector(CollectorBase):
    """Streams a quote CSV file (Table II schema)."""

    def __init__(
        self,
        path,
        universe: Universe,
        grid: TimeGrid,
        name: str = "file_collector",
    ):
        super().__init__(grid, name)
        self.path = path
        self.universe = universe

    def generate(self, ctx: Context) -> None:
        quotes = read_taq_csv(self.path, self.universe)
        cutoff = self.grid.smax * self.grid.delta_s
        quotes = quotes[quotes["t"] < cutoff]
        _emit_by_interval(ctx, quotes, self.grid, self._start, self._stop)


class QuoteDatabase:
    """In-memory stand-in for the historical quote database."""

    def __init__(self) -> None:
        self._days: dict[int, np.ndarray] = {}

    def store(self, day: int, records: np.ndarray) -> None:
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        validate_quote_array(records)
        self._days[day] = records.copy()

    def load(self, day: int) -> np.ndarray:
        try:
            return self._days[day].copy()
        except KeyError:
            raise KeyError(f"no quotes stored for day {day}") from None

    @property
    def days(self) -> list[int]:
        return sorted(self._days)

    def __len__(self) -> int:
        return len(self._days)


class DbCollector(CollectorBase):
    """Streams one stored day from a :class:`QuoteDatabase`."""

    def __init__(
        self,
        db: QuoteDatabase,
        grid: TimeGrid,
        day: int = 0,
        name: str = "db_collector",
    ):
        super().__init__(grid, name)
        self.db = db
        self.day = day

    def generate(self, ctx: Context) -> None:
        quotes = self.db.load(self.day)
        cutoff = self.grid.smax * self.grid.delta_s
        quotes = quotes[quotes["t"] < cutoff]
        _emit_by_interval(ctx, quotes, self.grid, self._start, self._stop)


class StoreCollector(CollectorBase):
    """Streams one day out of the partitioned tick store.

    Emits the same ``(s, records)`` interval stream as the other
    collectors, but batches come from the store's shard-merging replay
    cursor instead of an in-memory day array — segments are read through
    the CRC-verified block cache, never materialising the whole day.  On
    restore, the cursor seeks straight to the checkpoint watermark.
    """

    def __init__(self, reader, grid: TimeGrid, day: int = 0,
                 name: str = "store_collector"):
        super().__init__(grid, name)
        self.reader = reader
        self.day = day

    def generate(self, ctx: Context) -> None:
        from repro.store.replay import ReplayCursor

        cursor = ReplayCursor(self.reader, self.day, self.grid)
        start, stop = self.interval_range
        ctx.obs.metrics.counter(
            f"pipeline.{self.name}.quotes_collected"
        ).inc(cursor.rows_between(start, stop))
        for s, records in cursor.iter_range(start, stop):
            ctx.emit("quotes", (s, records))
