"""The (Parallel) Correlation Engine as a pipeline component (Figure 1).

Wraps an :class:`~repro.corr.online.OnlineCorrelationEngine`: consumes
return rows, and once the sliding window is full emits on ``corr`` after
every push.  Declared heavy (``weight``) so the placement heuristic gives
it a rank of its own when ranks are available — the paper's "Parallel
Correlation Engine (M=100)" box.

Two emission modes:

* **full matrix** (``pairs=None``): payload ``(s, matrix)`` — the whole
  market-wide matrix from one engine instance;
* **pair block** (``pairs`` given): payload ``(s, {pair: value})`` — only
  this engine's block.  Several block engines, each fed the same return
  stream and each owning a partition of the pairs, *are* the parallel
  correlation engine: the strategy component joins their blocks per
  interval.  :func:`repro.marketminer.session.build_figure1_workflow`
  wires this with ``n_corr_engines > 1``.

With a :class:`~repro.faults.policy.DegradePolicy` attached the engine
also degrades gracefully: when the return stream skips intervals (an
input block missed its deadline upstream), the last-good emission is
re-served for each missing interval, wrapped in
:class:`~repro.faults.policy.StaleCorr` so downstream components can
tell real matrices from stale ones.  Without a policy (the default) a
gap simply propagates — bitwise-identical to the pre-fault behaviour.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.corr.maronna import MaronnaConfig
from repro.corr.measures import CorrelationType, corr_matrix
from repro.corr.online import OnlineCorrelationEngine
from repro.faults.policy import DegradePolicy, StaleCorr
from repro.marketminer.component import Component, Context


class CorrelationEngineComponent(Component):
    """Online sliding-window correlation over the return stream."""

    def __init__(
        self,
        n_symbols: int,
        m: int,
        ctype: CorrelationType | str = CorrelationType.PEARSON,
        config: MaronnaConfig | None = None,
        name: str = "correlation",
        weight: float = 8.0,
        pairs: list[tuple[int, int]] | None = None,
        degrade: DegradePolicy | None = None,
    ):
        super().__init__(
            name=name,
            input_ports=("returns",),
            output_ports=("corr",),
            weight=weight,
        )
        self._engine = OnlineCorrelationEngine(n_symbols, m, ctype, config)
        self._config = config
        if pairs is not None:
            pairs = [tuple(sorted(p)) for p in pairs]
            for i, j in pairs:
                if not (0 <= i < n_symbols and 0 <= j < n_symbols and i != j):
                    raise ValueError(f"invalid pair ({i}, {j})")
            if len(set(pairs)) != len(pairs):
                raise ValueError("duplicate pairs")
        self.pairs = pairs
        self.degrade = degrade
        self._matrices_emitted = 0
        self._last_s: int | None = None
        self._last_good = None
        self._last_good_s: int | None = None
        self._stale_served = 0

    @property
    def m(self) -> int:
        return self._engine.m

    @property
    def ctype(self) -> CorrelationType:
        return self._engine.ctype

    def _serve_stale(self, ctx: Context, s: int) -> None:
        if self._last_good is None:
            return  # nothing good yet (warm-up): nothing to serve
        age = s - self._last_good_s
        policy = self.degrade
        if policy.max_stale_age is not None and age > policy.max_stale_age:
            return  # too old to trust: let the gap propagate
        ctx.emit("corr", (s, StaleCorr(self._last_good, age)))
        self._stale_served += 1
        ctx.obs.metrics.counter(
            f"pipeline.{self.name}.stale_served"
        ).inc()

    def on_message(self, ctx: Context, port: str, payload) -> None:
        s, returns_row = payload
        if (
            self.degrade is not None
            and self.degrade.serve_stale
            and self._last_s is not None
        ):
            # Input intervals that never arrived: re-serve the last-good
            # emission, flagged stale, so downstream stays time-aligned.
            for missed in range(self._last_s + 1, s):
                self._serve_stale(ctx, missed)
        self._last_s = s
        self._engine.push(np.asarray(returns_row, dtype=float))
        if not self._engine.ready:
            return
        # The sliding-window update is the pipeline's compute hot spot —
        # timed per interval so the report shows where the rank's CPU went.
        with ctx.obs.metrics.timer(f"pipeline.{self.name}.update.seconds"):
            if self.pairs is None:
                value = self._engine.matrix()
            else:
                partial = corr_matrix(
                    self._engine.window(), self.ctype, self._config,
                    pairs=self.pairs,
                )
                value = {(i, j): float(partial[i, j]) for i, j in self.pairs}
            ctx.emit("corr", (s, value))
        self._last_good = value
        self._last_good_s = s
        self._matrices_emitted += 1

    def on_stop(self, ctx: Context) -> None:
        ctx.obs.metrics.counter(f"pipeline.{self.name}.matrices").inc(
            self._matrices_emitted
        )

    def result(self) -> dict:
        out = {"matrices_emitted": self._matrices_emitted}
        if self.degrade is not None:
            out["stale_served"] = self._stale_served
        return out

    def snapshot(self) -> dict:
        return {
            "engine": copy.deepcopy(self._engine),
            "matrices_emitted": self._matrices_emitted,
            "last_s": self._last_s,
            "last_good": copy.deepcopy(self._last_good),
            "last_good_s": self._last_good_s,
            "stale_served": self._stale_served,
        }

    def restore(self, state: dict) -> None:
        self._engine = copy.deepcopy(state["engine"])
        self._matrices_emitted = state["matrices_emitted"]
        self._last_s = state["last_s"]
        self._last_good = copy.deepcopy(state["last_good"])
        self._last_good_s = state["last_good_s"]
        self._stale_served = state["stale_served"]
