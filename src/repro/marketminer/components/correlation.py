"""The (Parallel) Correlation Engine as a pipeline component (Figure 1).

Wraps an :class:`~repro.corr.online.OnlineCorrelationEngine`: consumes
return rows, and once the sliding window is full emits on ``corr`` after
every push.  Declared heavy (``weight``) so the placement heuristic gives
it a rank of its own when ranks are available — the paper's "Parallel
Correlation Engine (M=100)" box.

Two emission modes:

* **full matrix** (``pairs=None``): payload ``(s, matrix)`` — the whole
  market-wide matrix from one engine instance;
* **pair block** (``pairs`` given): payload ``(s, {pair: value})`` — only
  this engine's block.  Several block engines, each fed the same return
  stream and each owning a partition of the pairs, *are* the parallel
  correlation engine: the strategy component joins their blocks per
  interval.  :func:`repro.marketminer.session.build_figure1_workflow`
  wires this with ``n_corr_engines > 1``.
"""

from __future__ import annotations

import numpy as np

from repro.corr.maronna import MaronnaConfig
from repro.corr.measures import CorrelationType, corr_matrix
from repro.corr.online import OnlineCorrelationEngine
from repro.marketminer.component import Component, Context


class CorrelationEngineComponent(Component):
    """Online sliding-window correlation over the return stream."""

    def __init__(
        self,
        n_symbols: int,
        m: int,
        ctype: CorrelationType | str = CorrelationType.PEARSON,
        config: MaronnaConfig | None = None,
        name: str = "correlation",
        weight: float = 8.0,
        pairs: list[tuple[int, int]] | None = None,
    ):
        super().__init__(
            name=name,
            input_ports=("returns",),
            output_ports=("corr",),
            weight=weight,
        )
        self._engine = OnlineCorrelationEngine(n_symbols, m, ctype, config)
        self._config = config
        if pairs is not None:
            pairs = [tuple(sorted(p)) for p in pairs]
            for i, j in pairs:
                if not (0 <= i < n_symbols and 0 <= j < n_symbols and i != j):
                    raise ValueError(f"invalid pair ({i}, {j})")
            if len(set(pairs)) != len(pairs):
                raise ValueError("duplicate pairs")
        self.pairs = pairs
        self._matrices_emitted = 0

    @property
    def m(self) -> int:
        return self._engine.m

    @property
    def ctype(self) -> CorrelationType:
        return self._engine.ctype

    def on_message(self, ctx: Context, port: str, payload) -> None:
        s, returns_row = payload
        self._engine.push(np.asarray(returns_row, dtype=float))
        if not self._engine.ready:
            return
        # The sliding-window update is the pipeline's compute hot spot —
        # timed per interval so the report shows where the rank's CPU went.
        with ctx.obs.metrics.timer(f"pipeline.{self.name}.update.seconds"):
            if self.pairs is None:
                ctx.emit("corr", (s, self._engine.matrix()))
            else:
                partial = corr_matrix(
                    self._engine.window(), self.ctype, self._config,
                    pairs=self.pairs,
                )
                block = {(i, j): float(partial[i, j]) for i, j in self.pairs}
                ctx.emit("corr", (s, block))
        self._matrices_emitted += 1

    def on_stop(self, ctx: Context) -> None:
        ctx.obs.metrics.counter(f"pipeline.{self.name}.matrices").inc(
            self._matrices_emitted
        )

    def result(self) -> dict:
        return {"matrices_emitted": self._matrices_emitted}
