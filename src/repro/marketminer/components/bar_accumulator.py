"""The OHLC Bar Accumulator component (Figure 1).

Consumes per-interval quote batches, closes one BAM bar row per interval,
and emits ``(s, ohlc_row)`` on ``bars`` plus the close-price vector
``(s, closes)`` on ``closes`` — the stream the strategy component prices
against ("Quotes & Prices" in Figure 1).

Live streams cannot back-fill: a symbol has NaN closes until its first
quote arrives (the batch accumulator, which sees the whole day, back-fills
instead).  Downstream components must tolerate a NaN head.
"""

from __future__ import annotations

import copy

from repro.bars.accumulator import StreamingBarAccumulator
from repro.marketminer.component import Component, Context
from repro.util.timeutil import TimeGrid


class BarAccumulatorComponent(Component):
    """Streaming OHLC/BAM bar builder over a fixed interval grid."""

    def __init__(
        self,
        grid: TimeGrid,
        n_symbols: int,
        name: str = "bar_accumulator",
    ):
        super().__init__(
            name=name,
            input_ports=("quotes",),
            output_ports=("bars", "closes"),
        )
        self.grid = grid
        self._acc = StreamingBarAccumulator(grid, n_symbols)
        self._bars_emitted = 0

    def on_message(self, ctx: Context, port: str, payload) -> None:
        s, records = payload
        if s != self._acc.next_interval:
            raise ValueError(
                f"{self.name}: expected interval {self._acc.next_interval}, "
                f"got {s} (collector must emit every interval in order)"
            )
        for rec in records:
            self._acc.add_quote(
                float(rec["t"]),
                int(rec["symbol"]),
                float(rec["bid"]),
                float(rec["ask"]),
            )
        rows = self._acc.close_through(s)
        row = rows[0]
        ctx.emit("bars", (s, row))
        ctx.emit("closes", (s, row["close"].copy()))
        self._bars_emitted += 1

    def on_stop(self, ctx: Context) -> None:
        ctx.obs.metrics.counter(f"pipeline.{self.name}.bars").inc(
            self._bars_emitted
        )

    def result(self) -> dict:
        return {"bars_emitted": self._bars_emitted}

    def snapshot(self) -> dict:
        return {
            "acc": copy.deepcopy(self._acc),
            "bars_emitted": self._bars_emitted,
            "watermark": self._acc.next_interval,
        }

    def restore(self, state: dict) -> None:
        self._acc = copy.deepcopy(state["acc"])
        self._bars_emitted = state["bars_emitted"]
