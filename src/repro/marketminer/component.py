"""The MarketMiner component model.

A component is a named processing node with declared input and output
ports.  Three event handlers drive it:

* ``generate(ctx)`` — source components only: produce the stream by
  calling ``ctx.emit`` repeatedly; return to signal end-of-stream;
* ``on_message(ctx, port, payload)`` — called for every message arriving
  on an input port, in per-upstream FIFO order;
* ``on_stop(ctx)`` — called exactly once, after end-of-stream has arrived
  on every inbound edge (or after ``generate`` returns, for sources).

Components are single-threaded by construction — the runtime never calls
two handlers of one component concurrently — so handler code needs no
locking.  After a run, per-component summaries are collected through
``result()``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs import NULL_OBS, Obs


class Context:
    """Runtime services handed to component handlers.

    ``emit(port, payload)`` routes a message to every edge connected to
    the component's output ``port`` (local edges dispatch synchronously,
    remote edges cross ranks through the MPI substrate).  ``obs`` is the
    hosting rank's observability handle — the shared no-op handle when
    telemetry is off, so components record domain metrics unconditionally.
    """

    def __init__(
        self,
        component_name: str,
        emit_fn: Callable[[str, str, Any], None],
        obs: Obs | None = None,
    ):
        self._component_name = component_name
        self._emit_fn = emit_fn
        self._obs = obs if obs is not None else NULL_OBS

    @property
    def component_name(self) -> str:
        return self._component_name

    @property
    def obs(self) -> Obs:
        """The hosting rank's observability handle (never None)."""
        return self._obs

    def emit(self, port: str, payload: Any) -> None:
        self._emit_fn(self._component_name, port, payload)


class Component:
    """Base class for workflow components.

    Subclasses declare ports via the constructor and override the event
    handlers they need.  A component with no input ports must override
    :meth:`generate` (it is a source); a component with input ports must
    override :meth:`on_message`.
    """

    def __init__(
        self,
        name: str,
        input_ports: tuple[str, ...] = (),
        output_ports: tuple[str, ...] = (),
        weight: float = 1.0,
        max_fan_in: dict[str, int] | None = None,
        max_fan_out: dict[str, int] | None = None,
    ):
        if not name or not isinstance(name, str):
            raise ValueError(f"component name must be a non-empty string, got {name!r}")
        if len(set(input_ports)) != len(input_ports):
            raise ValueError(f"{name}: duplicate input ports")
        if len(set(output_ports)) != len(output_ports):
            raise ValueError(f"{name}: duplicate output ports")
        if weight <= 0:
            raise ValueError(f"{name}: weight must be positive, got {weight}")
        self.name = name
        self.input_ports = tuple(input_ports)
        self.output_ports = tuple(output_ports)
        self.weight = float(weight)
        # Optional arity contracts: per-port caps on how many edges may
        # attach.  Enforced by the graph linter, not by connect(), so a
        # violating spec is diagnosable rather than unrepresentable.
        self.max_fan_in = self._check_arity(max_fan_in, self.input_ports, "input")
        self.max_fan_out = self._check_arity(
            max_fan_out, self.output_ports, "output"
        )

    def _check_arity(
        self,
        caps: dict[str, int] | None,
        ports: tuple[str, ...],
        kind: str,
    ) -> dict[str, int]:
        caps = dict(caps or {})
        for port, cap in caps.items():
            if port not in ports:
                raise ValueError(
                    f"{self.name}: fan cap for undeclared {kind} port {port!r}"
                )
            if cap < 1:
                raise ValueError(
                    f"{self.name}: fan cap for {kind} port {port!r} must be "
                    f">= 1, got {cap}"
                )
        return caps

    @property
    def is_source(self) -> bool:
        return not self.input_ports

    # -- event handlers (override in subclasses) ---------------------------

    def generate(self, ctx: Context) -> None:
        """Produce the source stream; returning signals end-of-stream."""
        raise NotImplementedError(
            f"{self.name}: source components must implement generate()"
        )

    def on_message(self, ctx: Context, port: str, payload: Any) -> None:
        """Handle one inbound message."""
        raise NotImplementedError(
            f"{self.name}: components with inputs must implement on_message()"
        )

    def on_stop(self, ctx: Context) -> None:
        """Flush state at end-of-stream (optional)."""

    def on_pause(self, ctx: Context) -> None:
        """Quiesce at a checkpoint (epoch) boundary (optional).

        Called instead of :meth:`on_stop` when the runtime ends an epoch
        that the session will resume from: the component should finish
        processing buffered input but must *not* run end-of-session
        finalisation (completeness checks, summary metrics), because the
        stream continues after :meth:`restore`.
        """

    def result(self) -> Any:
        """Post-run summary returned to the driver (optional)."""
        return None

    # -- checkpoint/restart -------------------------------------------------

    def snapshot(self) -> dict | None:
        """Picklable state for checkpoint/restart; ``None`` = stateless.

        Must capture *copies* of mutable state: the checkpoint may be
        restored several times (once per restart attempt) and must not
        alias live component state.
        """
        return None

    def restore(self, state: dict) -> None:
        """Install a :meth:`snapshot` dict into a freshly built component.

        Implementations must deep-copy mutable values out of ``state``:
        a failed attempt after restore must not corrupt the checkpoint
        that the next attempt restores from.
        """
        raise NotImplementedError(
            f"{self.name}: stateful components must implement restore()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"in={list(self.input_ports)} out={list(self.output_ports)}>"
        )
