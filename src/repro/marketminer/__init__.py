"""MarketMiner: the MPI-based DAG stream-processing analytics platform.

The paper's platform (Figure 1) links data adapters, analytics components
and a pair trading strategy "together using MPI-based middleware" into a
directed-acyclic-graph workflow.  This subpackage is that platform:

* :mod:`~repro.marketminer.component` — the component model: named input/
  output ports, event handlers, an emit-based context;
* :mod:`~repro.marketminer.graph` — workflow construction and validation;
* :mod:`~repro.marketminer.scheduler` — the SPMD runtime: components are
  placed onto ranks, messages route in-process or across ranks through the
  MPI substrate, and end-of-stream tokens propagate shutdown;
* :mod:`~repro.marketminer.components` — the Figure-1 component library:
  collectors (live/file/DB), OHLC bar accumulator, technical analysis,
  correlation engine, pair trading strategy, order sink;
* :mod:`~repro.marketminer.session` — one-call assembly of the Figure-1
  pipeline over a synthetic market.
"""

from repro.marketminer.component import Component, Context
from repro.marketminer.graph import Workflow
from repro.marketminer.scheduler import WorkflowRunner
from repro.marketminer.session import (
    build_figure1_workflow,
    build_multi_spec_workflow,
    collect_multi_spec_trades,
    run_calendar_sessions,
    run_figure1_session,
)

__all__ = [
    "Component",
    "Context",
    "Workflow",
    "WorkflowRunner",
    "build_figure1_workflow",
    "build_multi_spec_workflow",
    "collect_multi_spec_trades",
    "run_calendar_sessions",
    "run_figure1_session",
]
