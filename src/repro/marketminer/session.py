"""One-call assembly of the Figure-1 pipeline.

``build_figure1_workflow`` wires collector → cleaning → bar accumulator →
technical analysis → correlation engine → pair trading strategy → order
sink, matching the paper's architecture figure; ``run_figure1_session``
executes it SPMD over the MPI substrate and returns every component's
results (bars emitted, matrices produced, trades, baskets, cleaning
counts) on every rank.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.corr.maronna import MaronnaConfig
from repro.marketminer.component import Component
from repro.marketminer.components.bar_accumulator import BarAccumulatorComponent
from repro.marketminer.components.cleaning import CleaningComponent
from repro.marketminer.components.collectors import LiveCollector
from repro.marketminer.components.correlation import CorrelationEngineComponent
from repro.marketminer.components.orders import OrderSinkComponent
from repro.marketminer.components.strategy import PairTradingComponent
from repro.marketminer.components.technical import TechnicalAnalysisComponent
from repro.marketminer.graph import Workflow
from repro.marketminer.scheduler import WorkflowRunner
from repro.mpi.launcher import run_spmd
from repro.strategy.params import StrategyParams
from repro.strategy.portfolio import RiskLimits
from repro.taq.synthetic import SyntheticMarket
from repro.util.timeutil import TimeGrid


def build_figure1_workflow(
    market: SyntheticMarket,
    grid_time: TimeGrid,
    pairs: list[tuple[int, int]],
    params_grid: list[StrategyParams],
    day: int = 0,
    collector: Component | None = None,
    limits: RiskLimits | None = None,
    maronna_config: MaronnaConfig | None = None,
    clean: bool = True,
    n_corr_engines: int = 1,
) -> Workflow:
    """Wire the paper's Figure-1 pipeline for one trading day.

    All parameter sets must share (Δs, M, Ctype) — one correlation *spec*
    per workflow, as drawn in the figure.  With ``n_corr_engines > 1``
    the correlation work is split into that many pair-block engines fed
    from the same return stream — the figure's "Parallel Correlation
    Engine" — and the strategy component joins the blocks per interval.
    """
    if not params_grid:
        raise ValueError("need at least one parameter set")
    specs = {(p.delta_s, p.m, p.ctype) for p in params_grid}
    if len(specs) != 1:
        raise ValueError(
            f"one Figure-1 pipeline hosts one correlation engine; the grid "
            f"spans {len(specs)} (delta_s, M, Ctype) specs: {sorted(specs, key=str)}"
        )
    delta_s, m, ctype = specs.pop()
    if delta_s != grid_time.delta_s:
        raise ValueError(
            f"grid delta_s={grid_time.delta_s} does not match parameter "
            f"delta_s={delta_s}"
        )
    n_symbols = len(market.universe)

    wf = Workflow(name="figure1")
    wf.add(
        collector
        if collector is not None
        else LiveCollector(market, grid_time, day=day)
    )
    collector_name = list(wf.components)[0]
    if clean:
        wf.add(CleaningComponent(n_symbols))
    wf.add(BarAccumulatorComponent(grid_time, n_symbols))
    wf.add(TechnicalAnalysisComponent())
    if n_corr_engines < 1:
        raise ValueError(f"n_corr_engines must be >= 1, got {n_corr_engines}")
    pairs = [tuple(sorted(p)) for p in pairs]
    if n_corr_engines == 1:
        engine_names = ["correlation"]
        wf.add(
            CorrelationEngineComponent(
                n_symbols, m, ctype, config=maronna_config
            )
        )
    else:
        from repro.corr.parallel import partition_pairs

        blocks = partition_pairs(pairs, n_corr_engines)
        engine_names = []
        for b, block in enumerate(blocks):
            if not block:
                continue  # more engines than pairs: drop the idle ones
            name = f"correlation_{b}"
            engine_names.append(name)
            wf.add(
                CorrelationEngineComponent(
                    n_symbols, m, ctype, config=maronna_config,
                    name=name, pairs=block,
                )
            )
    wf.add(
        PairTradingComponent(
            pairs=pairs, grid=params_grid, smax=grid_time.smax, m=m
        )
    )
    wf.add(OrderSinkComponent(limits=limits))

    if clean:
        wf.connect(collector_name, "quotes", "cleaning", "quotes")
        wf.connect("cleaning", "quotes", "bar_accumulator", "quotes")
    else:
        wf.connect(collector_name, "quotes", "bar_accumulator", "quotes")
    wf.connect("bar_accumulator", "closes", "technical", "closes")
    wf.connect("bar_accumulator", "closes", "pair_trading", "closes")
    for name in engine_names:
        wf.connect("technical", "returns", name, "returns")
        wf.connect(name, "corr", "pair_trading", "corr")
    wf.connect("pair_trading", "orders", "order_sink", "orders")
    wf.connect("pair_trading", "trades", "order_sink", "trades")
    wf.validate()
    return wf


def build_multi_spec_workflow(
    market: SyntheticMarket,
    grid_time: TimeGrid,
    pairs: list[tuple[int, int]],
    params_grid: list[StrategyParams],
    day: int = 0,
    limits: RiskLimits | None = None,
    maronna_config: MaronnaConfig | None = None,
    clean: bool = True,
) -> Workflow:
    """One platform, many strategies: a pipeline hosting every spec.

    The Figure-1 caption shows MarketMiner "power[ing] a pair trading
    strategy with a particular set of parameters"; a real deployment runs
    many parameter sets at once.  This builder shares the data plumbing
    (collector → cleaning → bars → technical analysis) and instantiates
    one correlation engine plus one strategy component per distinct
    (M, Ctype) spec, all feeding a single order sink — the master that
    risk-manages the union.

    All parameter sets must share Δs (one bar clock per pipeline).
    """
    if not params_grid:
        raise ValueError("need at least one parameter set")
    if {p.delta_s for p in params_grid} != {grid_time.delta_s}:
        raise ValueError("all parameter sets must share the pipeline's delta_s")
    pairs = [tuple(sorted(p)) for p in pairs]
    n_symbols = len(market.universe)

    specs: dict[tuple, list[tuple[int, StrategyParams]]] = {}
    for k, params in enumerate(params_grid):
        specs.setdefault((params.m, params.ctype), []).append((k, params))

    wf = Workflow(name="figure1-multi-spec")
    wf.add(LiveCollector(market, grid_time, day=day))
    upstream = "live_collector"
    if clean:
        wf.add(CleaningComponent(n_symbols))
        wf.connect(upstream, "quotes", "cleaning", "quotes")
        upstream = "cleaning"
    wf.add(BarAccumulatorComponent(grid_time, n_symbols))
    wf.connect(upstream, "quotes", "bar_accumulator", "quotes")
    wf.add(TechnicalAnalysisComponent())
    wf.connect("bar_accumulator", "closes", "technical", "closes")
    wf.add(OrderSinkComponent(limits=limits))

    for idx, ((m, ctype), members) in enumerate(sorted(specs.items(), key=str)):
        engine = f"correlation_{ctype.value}_m{m}"
        strategy = f"pair_trading_{idx}"
        wf.add(
            CorrelationEngineComponent(
                n_symbols, m, ctype, config=maronna_config, name=engine
            )
        )
        # Each strategy component sees only its spec's parameter sets but
        # keeps the *global* parameter indices via a sub-grid in order.
        sub_grid = [params for _, params in members]
        comp = PairTradingComponent(
            pairs=pairs,
            grid=sub_grid,
            smax=grid_time.smax,
            m=m,
            name=strategy,
        )
        comp.param_indices = tuple(k for k, _ in members)  # global mapping
        wf.add(comp)
        wf.connect("technical", "returns", engine, "returns")
        wf.connect(engine, "corr", strategy, "corr")
        wf.connect("bar_accumulator", "closes", strategy, "closes")
        wf.connect(strategy, "orders", "order_sink", "orders")
        wf.connect(strategy, "trades", "order_sink", "trades")
    wf.validate()
    return wf


def collect_multi_spec_trades(results: dict) -> dict:
    """Merge per-spec strategy results into {(pair, global_k): trades}."""
    merged: dict = {}
    for name, res in results.items():
        if not name.startswith("pair_trading"):
            continue
        mapping = res.get("param_indices")
        for (pair, local_k), trades in res["trades"].items():
            global_k = mapping[local_k] if mapping else local_k
            key = (pair, global_k)
            if key in merged:
                raise ValueError(f"duplicate trades for {key}")
            merged[key] = trades
    return merged


class SessionKilled(RuntimeError):
    """A supervised session was killed by its controller at an epoch gate."""


class SessionControl:
    """Pause/resume/kill handle for a supervised Figure-1 session.

    The serving layer owns one per live session; the supervisor
    (:func:`repro.faults.run_supervised_session`) calls :meth:`gate`
    before every epoch attempt and :meth:`on_checkpoint` after every
    successful checkpoint.  Epoch boundaries are the only consistent
    cuts of the stream (end-of-stream has drained all in-flight
    traffic), so they are where control takes effect: a pause parks the
    session at the gate, a resume releases it, a kill raises
    :class:`SessionKilled` out of the gate — which means kill works both
    on a running session (at its next boundary) and on one already
    parked in pause.

    ``on_gate`` is invoked on every gate pass (including each poll while
    parked): the serving layer uses it to drain the session's bounded
    command queue, so commands issued mid-pause — including the kill —
    are still consumed.  All flags are :class:`threading.Event`-backed;
    every method is safe to call from any thread.

    Elasticity rides the same seam: :meth:`request_resize` queues a
    target pool size (latest request wins — a single pending slot, not a
    queue) which the elastic supervisor consumes at its next rebuild via
    :meth:`take_resize`; a request landing mid-epoch is therefore
    *deferred to the boundary*, never applied in place.  The supervisor
    reports back through :meth:`resize_applied` and
    :meth:`note_restart`, so the serving layer's status/telemetry read
    pool size, resize history and restart counts straight off the
    control handle.
    """

    #: Retained (epoch, old, new) resize-history entries; older rotate out.
    RESIZE_HISTORY_CAP = 64

    def __init__(
        self,
        poll_interval: float = 0.05,
        on_gate: "Callable[[SessionControl], None] | None" = None,
        on_resize: "Callable[[int, int, int], None] | None" = None,
    ):
        self.poll_interval = poll_interval
        self.on_gate = on_gate
        self.on_resize = on_resize
        self.n_gates = 0
        self.n_checkpoints = 0
        self.n_restarts = 0
        self._pause = threading.Event()
        self._kill = threading.Event()
        self._lock = threading.Lock()
        self._checkpoint: "tuple[int, dict[str, Any]] | None" = None
        self._resize_target: "int | None" = None
        self._pool_size: "int | None" = None
        self._resize_history: "list[tuple[int, int, int]]" = []

    # -- controller side (HTTP threads) --------------------------------------

    def pause(self) -> None:
        """Park the session at its next epoch gate until :meth:`resume`."""
        self._pause.set()

    def resume(self) -> None:
        """Release a paused session."""
        self._pause.clear()

    def kill(self) -> None:
        """Terminate the session at its next gate pass (even mid-pause)."""
        self._kill.set()

    @property
    def paused(self) -> bool:
        return self._pause.is_set()

    @property
    def killed(self) -> bool:
        return self._kill.is_set()

    def request_resize(self, target: int) -> None:
        """Ask for a pool resize at the session's next rebuild boundary.

        One pending slot, latest wins: issuing ``resize 4`` then
        ``resize 2`` before a boundary applies only the 2.  Validation
        against backend capacity happens at intake (serving layer) and
        again at the boundary (supervisor); this method only records
        intent.
        """
        target = int(target)
        if target < 1:
            raise ValueError(
                f"cannot resize the pool below 1 rank, got {target}"
            )
        with self._lock:
            self._resize_target = target

    @property
    def pending_resize(self) -> "int | None":
        """The queued-but-not-yet-applied target size, if any."""
        with self._lock:
            return self._resize_target

    # -- session side: elasticity reporting ------------------------------------

    def take_resize(self) -> "int | None":
        """Consume the pending resize target (supervisor, at a boundary)."""
        with self._lock:
            target = self._resize_target
            self._resize_target = None
            return target

    def note_pool(self, size: int) -> None:
        """Record the pool size the session is currently running at."""
        with self._lock:
            self._pool_size = size

    def note_restart(self, epoch: int, attempt: int) -> None:
        """Count one supervisor restart (crash recovery, not resize)."""
        with self._lock:
            self.n_restarts += 1

    def resize_applied(self, epoch: int, old: int, new: int) -> None:
        """Record an applied resize; invoke ``on_resize`` for audit."""
        with self._lock:
            self._pool_size = new
            self._resize_history.append((epoch, old, new))
            if len(self._resize_history) > self.RESIZE_HISTORY_CAP:
                del self._resize_history[0]
        if self.on_resize is not None:
            self.on_resize(epoch, old, new)

    @property
    def pool_size(self) -> "int | None":
        """Current pool size (``None`` until the session first runs)."""
        with self._lock:
            return self._pool_size

    def resize_history(self) -> "list[tuple[int, int, int]]":
        """Applied resizes as (epoch, old, new), oldest first (capped)."""
        with self._lock:
            return list(self._resize_history)

    # -- session side (the supervisor's worker thread) ------------------------

    def gate(self, epoch: int) -> None:
        """Block while paused; raise :class:`SessionKilled` when killed."""
        self.n_gates += 1
        while True:
            if self.on_gate is not None:
                self.on_gate(self)
            if self._kill.is_set():
                raise SessionKilled(f"session killed at epoch {epoch} gate")
            if not self._pause.is_set():
                return
            self._kill.wait(self.poll_interval)

    def on_checkpoint(self, epoch: int, snapshots: "dict[str, Any]") -> None:
        """Publish the latest consistent checkpoint for live queries."""
        with self._lock:
            self._checkpoint = (epoch, snapshots)
            self.n_checkpoints += 1

    def latest_checkpoint(self) -> "tuple[int, dict[str, Any]] | None":
        """The newest ``(epoch, component snapshots)`` cut, if any yet."""
        with self._lock:
            return self._checkpoint


def run_figure1_session(
    workflow: Workflow,
    size: int = 3,
    backend: str = "thread",
    collect_stats: bool = False,
    obs_enabled: bool = False,
    fault_plan=None,
    fault_attempt: int = 0,
    flight_dump: str | None = None,
    obs_hook=None,
    **backend_options,
) -> dict:
    """Execute a Figure-1 workflow SPMD; returns all component results.

    With ``obs_enabled=True`` the result dict gains an ``"_obs"`` entry:
    the merged cross-rank telemetry report (handler latency histograms,
    MPI message/byte counters, span tree) in ``repro.obs/v1`` form.

    With a ``fault_plan`` (see :mod:`repro.faults`), every rank runs
    under an attached fault injector and the result gains a ``"_faults"``
    entry with the deterministic per-rank fault event logs.  For
    supervised recovery (checkpoint/restart) use
    :func:`repro.faults.run_supervised_session` instead — this entry
    point runs a single, unsupervised attempt.

    ``flight_dump`` and ``obs_hook`` pass straight through to
    :meth:`~repro.marketminer.scheduler.WorkflowRunner.run`: per-rank
    flight-recorder dumps, and the live-telemetry registration seam the
    ``repro top`` hub uses (thread backend only — the hook must share the
    driver's address space).
    """

    runner = WorkflowRunner(workflow)

    def spmd(comm):
        return runner.run(
            comm,
            collect_stats=collect_stats,
            obs_enabled=obs_enabled,
            fault_plan=fault_plan,
            fault_attempt=fault_attempt,
            flight_dump=flight_dump,
            obs_hook=obs_hook,
        )

    results = run_spmd(spmd, size=size, backend=backend, **backend_options)
    return results[0]


def run_calendar_sessions(
    market: SyntheticMarket,
    grid_time: TimeGrid,
    pairs: list[tuple[int, int]],
    params_grid: list[StrategyParams],
    n_days: int,
    size: int = 3,
    backend: str = "thread",
    n_corr_engines: int = 1,
    limits: RiskLimits | None = None,
    maronna_config: MaronnaConfig | None = None,
    clean: bool = True,
):
    """Run the live pipeline day after day — "longer time frames" (§VI).

    Builds and streams one Figure-1 workflow per trading day (components
    are stateful, so each day gets a fresh build, exactly as a live
    deployment restarts at the open) and accumulates every day's trades
    into a :class:`~repro.backtest.results.ResultStore`, so the paper's
    period metrics (eqs 1–9) apply to live-pipeline output directly.

    Returns ``(store, daily_results)`` where ``daily_results[day]`` is the
    day's full component-result dict.
    """
    from repro.backtest.results import ResultStore

    if n_days <= 0:
        raise ValueError(f"n_days must be positive, got {n_days}")
    store = ResultStore()
    daily_results = {}
    for day in range(n_days):
        workflow = build_figure1_workflow(
            market,
            grid_time,
            pairs,
            params_grid,
            day=day,
            limits=limits,
            maronna_config=maronna_config,
            clean=clean,
            n_corr_engines=n_corr_engines,
        )
        results = run_figure1_session(workflow, size=size, backend=backend)
        daily_results[day] = results
        for (pair, k), trades in results["pair_trading"]["trades"].items():
            store.add(pair, k, day, [t.ret for t in trades])
    return store, daily_results
