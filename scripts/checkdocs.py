"""Validate the docs tree: internal links resolve, CLI examples parse.

Two checks, run by scripts/check.sh:

1. Every relative markdown link in ``docs/*.md`` and ``README.md``
   points at a file that exists; a ``#fragment`` must match a heading
   in the target file (GitHub slug rules: lowercase, spaces to
   hyphens, punctuation stripped).
2. Every ``repro ...`` command line inside a fenced code block of
   ``docs/cli.md`` parses against the real argparse tree
   (``repro.cli.build_parser``) without executing anything — worked
   examples cannot drift from the implementation.

Exits non-zero listing every failure; prints a one-line summary on
success.
"""

import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def heading_slugs(path: Path) -> set:
    """GitHub-style anchor slugs for every heading in ``path``."""
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        text = match.group(1).strip().lower()
        text = re.sub(r"[^\w\s-]", "", text)
        slugs.add(re.sub(r"\s+", "-", text))
    return slugs


def check_links(doc: Path, errors: list) -> int:
    checked = 0
    for target in LINK_RE.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        checked += 1
        path_part, _, fragment = target.partition("#")
        dest = doc if not path_part else (doc.parent / path_part).resolve()
        if not dest.exists():
            errors.append(f"{doc.relative_to(REPO)}: broken link {target!r}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in heading_slugs(dest):
                errors.append(
                    f"{doc.relative_to(REPO)}: link {target!r} — no such "
                    f"heading in {dest.name}"
                )
    return checked


def cli_lines(doc: Path) -> list:
    """``repro ...`` lines inside fenced code blocks of ``doc``."""
    lines, in_fence = [], False
    for lineno, line in enumerate(
        doc.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        stripped = line.strip()
        if in_fence and stripped.startswith("repro "):
            lines.append((lineno, stripped))
    return lines


def check_cli_examples(doc: Path, errors: list) -> int:
    from repro.cli import build_parser

    examples = cli_lines(doc)
    for lineno, line in examples:
        argv = shlex.split(line, comments=True)[1:]
        try:
            build_parser().parse_args(argv)
        except SystemExit:
            errors.append(
                f"{doc.relative_to(REPO)}:{lineno}: example does not "
                f"parse: {line!r}"
            )
        except Exception as exc:  # argparse should only SystemExit
            errors.append(
                f"{doc.relative_to(REPO)}:{lineno}: {type(exc).__name__} "
                f"parsing {line!r}: {exc}"
            )
    return len(examples)


def main() -> int:
    docs = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]
    required = {"architecture.md", "performance.md", "cli.md"}
    present = {p.name for p in docs}
    errors = [f"docs/: missing required file {name}"
              for name in sorted(required - present)]

    n_links = sum(check_links(doc, errors) for doc in docs if doc.exists())
    cli_doc = REPO / "docs" / "cli.md"
    n_cli = check_cli_examples(cli_doc, errors) if cli_doc.exists() else 0
    if n_cli == 0:
        errors.append("docs/cli.md: no `repro ...` examples found")

    if errors:
        print("checkdocs: FAILED", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(
        f"checkdocs: ok — {len(docs)} file(s), {n_links} internal "
        f"link(s), {n_cli} CLI example(s) parsed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
