#!/usr/bin/env bash
# Repository health check: compile, test, and verify that disabled
# observability stays (near-)free on the hot paths.
#
# Usage: scripts/check.sh          (from the repository root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== compileall =="
python -m compileall -q src

echo "== repro lint (graph spec + repo AST rules) =="
python -m repro.cli lint --strict --root src/repro

echo "== repro analyze (deepcheck invariant analyzers + baseline) =="
python - <<'EOF'
"""Whole-repo deepcheck must pass --strict under the committed baseline
and finish inside a 10 s wall-clock budget (it runs on every check)."""
import subprocess
import sys
import time

t0 = time.perf_counter()
proc = subprocess.run(
    [sys.executable, "-m", "repro.cli", "analyze", "--strict",
     "--root", "src/repro", "--baseline", "analysis_baseline.json",
     "--symbols", "4", "--seconds", "600"],
)
elapsed = time.perf_counter() - t0
assert proc.returncode == 0, (
    f"repro analyze --strict failed (exit {proc.returncode}): fix the "
    f"finding or baseline it with a justification"
)
print(f"deepcheck clean in {elapsed:.2f}s")
assert elapsed < 10.0, (
    f"deepcheck took {elapsed:.2f}s >= 10s budget: the analyzers must "
    f"stay cheap enough to run on every check"
)
EOF

echo "== ruff/mypy (strict, scoped to src/repro/analysis) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src/repro/analysis
else
    echo "ruff not installed; skipping (config lives in pyproject.toml)"
fi
if command -v mypy >/dev/null 2>&1; then
    mypy src/repro/analysis
else
    echo "mypy not installed; skipping (config lives in pyproject.toml)"
fi

echo "== docs: internal links + CLI examples parse =="
python scripts/checkdocs.py

echo "== batch correlation bitwise smoke check =="
python -m benchmarks.bench_corr --smoke

echo "== serve smoke check (boot server, 200-request burst, clean exit) =="
python - <<'EOF'
"""The serving layer must boot, absorb a 200-request mixed burst with
zero read-path errors, and shut down cleanly — in well under 10 s."""
import time

from benchmarks.bench_serve import run_smoke

t0 = time.perf_counter()
run_smoke()
elapsed = time.perf_counter() - t0
assert elapsed < 10.0, (
    f"serve smoke took {elapsed:.1f}s >= 10s budget: the stage must stay "
    f"cheap enough to run on every check"
)
EOF

echo "== pytest =="
python -m pytest -x -q

echo "== tick store ingest/verify/scan smoke check =="
STORE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_DIR"' EXIT
python -m repro.cli store ingest --root "$STORE_DIR" \
    --symbols 8 --days 3 --seconds 1800 --seed 7 --shards 3 --block-rows 1024
python -m repro.cli store ls --root "$STORE_DIR"
python -m repro.cli store verify --root "$STORE_DIR" --deep
python -m repro.cli store scan --root "$STORE_DIR" \
    --days 1 2 --select XOM,CVX --t-min 100 --t-max 1500 --cached

echo "== observability overhead smoke check =="
python - <<'EOF'
"""Assert the disabled-obs pipeline is within 10% of pre-obs cost.

Runs the same Figure-1 session with observability off and on, taking the
min of N runs each (min is robust to scheduling noise).  The disabled
path must not pay for the instrumentation: we require
min(disabled) < 1.10 * min(enabled) -- i.e. disabling can't be slower
than enabling by more than the tolerance, which bounds the no-op
overhead since the enabled run does strictly more work.
"""
import time

from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

SECONDS = 3000
N_RUNS = 3


def workflow():
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=7,
    )
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
    return build_figure1_workflow(
        market,
        TimeGrid(30, trading_seconds=SECONDS),
        list(market.universe.pairs()),
        [params],
    )


def best_of(obs_enabled):
    best = float("inf")
    for _ in range(N_RUNS):
        t0 = time.perf_counter()
        run_figure1_session(workflow(), size=2, obs_enabled=obs_enabled)
        best = min(best, time.perf_counter() - t0)
    return best


disabled = best_of(False)
enabled = best_of(True)
ratio = disabled / enabled
print(f"disabled {disabled:.3f}s  enabled {enabled:.3f}s  "
      f"disabled/enabled {ratio:.2f}")
assert ratio < 1.10, (
    f"disabled observability should be at least as fast as enabled "
    f"(ratio {ratio:.2f} >= 1.10): the no-op fast path regressed"
)
print("ok: disabled observability pays no measurable overhead")
EOF

echo "== live-sampler overhead smoke check =="
python - <<'EOF'
"""Assert the live time-series sampler costs <5% on a Figure-1 session.

Runs the same obs-enabled session bare and with a TelemetryHub sampling
every rank's registry at the default interval (the `repro top` data
path), min of N runs each.  The sampler reads registries from its own
thread, so the session should barely notice it: we require
min(sampled) < 1.05 * min(bare).
"""
import time

from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.obs.live import TelemetryHub
from repro.obs.live.sampler import DEFAULT_INTERVAL
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

SECONDS = 3000
N_RUNS = 3


def workflow():
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=7,
    )
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
    return build_figure1_workflow(
        market,
        TimeGrid(30, trading_seconds=SECONDS),
        list(market.universe.pairs()),
        [params],
    )


def best_of(sampled):
    best = float("inf")
    for _ in range(N_RUNS):
        hub = TelemetryHub()
        if sampled:
            hub.start(DEFAULT_INTERVAL)
        t0 = time.perf_counter()
        try:
            run_figure1_session(
                workflow(), size=2, obs_enabled=True,
                obs_hook=hub.register if sampled else None,
            )
            best = min(best, time.perf_counter() - t0)
        finally:
            hub.stop()
        if sampled:
            assert hub.n_ticks > 0, "sampler never ticked: check is vacuous"
    return best


bare = best_of(False)
sampled = best_of(True)
ratio = sampled / bare
print(f"bare {bare:.3f}s  sampled {sampled:.3f}s  "
      f"sampled/bare {ratio:.2f}")
assert ratio < 1.05, (
    f"live sampling must cost <5% on the session "
    f"(ratio {ratio:.2f} >= 1.05)"
)
print("ok: live sampler stays under the 5% overhead budget")
EOF

echo "== comm-tracer overhead smoke check =="
python - <<'EOF'
"""Assert the detached comm tracer stays (near-)free on the p2p hot path.

Same min-of-N discipline as the obs check: an untraced ping-pong loop
must run within 10% of a traced one.  The untraced path pays exactly one
``tracer is not None`` test per send/recv, so this bounds the cost of
carrying the tracing seam in the mailbox communicator.
"""
import time

from repro.analysis.commtrace import run_traced
from repro.mpi.launcher import run_spmd

ROUNDS = 4000
N_RUNS = 3


def pingpong(comm):
    peer = 1 - comm.rank
    for i in range(ROUNDS):
        if comm.rank == 0:
            comm.send(i, peer, tag=1)
            comm.recv(source=peer, tag=2)
        else:
            comm.recv(source=peer, tag=1)
            comm.send(i, peer, tag=2)
    return None


def best_of(traced):
    best = float("inf")
    for _ in range(N_RUNS):
        t0 = time.perf_counter()
        if traced:
            run_traced(pingpong, 2, default_timeout=30.0)
        else:
            run_spmd(pingpong, size=2, default_timeout=30.0)
        best = min(best, time.perf_counter() - t0)
    return best


untraced = best_of(False)
traced = best_of(True)
ratio = untraced / traced
print(f"untraced {untraced:.3f}s  traced {traced:.3f}s  "
      f"untraced/traced {ratio:.2f}")
assert ratio < 1.10, (
    f"untraced comm should be at least as fast as traced "
    f"(ratio {ratio:.2f} >= 1.10): the no-op fast path regressed"
)
print("ok: detached comm tracer pays no measurable overhead")
EOF

echo "== chaos recovery smoke check =="
python - <<'EOF'
"""Assert the self-healing runtime's headline invariant on a live run.

Runs one Figure-1 session clean and once under the ``crash-mid`` fault
plan (a rank killed mid-epoch) with checkpoint/restart supervision: the
crash must actually fire (restarts >= 1) and the recovered session must
be bitwise-identical to the fault-free one.
"""
from repro.faults import (
    named_plan,
    run_supervised_session,
    session_results_equal,
)
from repro.marketminer.session import build_figure1_workflow
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

SECONDS = 23_400 // 16


def build():
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=33,
    )
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)
    return build_figure1_workflow(
        market,
        TimeGrid(30, trading_seconds=SECONDS),
        [(0, 1), (2, 3)],
        [params],
    )


options = {"default_timeout": 2.0}
clean = run_supervised_session(build, size=3, backend_options=options)
chaos = run_supervised_session(
    build, size=3, plan=named_plan("crash-mid"), checkpoint_every=20,
    backend_options=options,
)
assert chaos.restarts >= 1, "crash-mid plan never fired: smoke is vacuous"
assert session_results_equal(clean.results, chaos.results), (
    "recovered session diverged from the fault-free run"
)
print(f"ok: crash-mid recovered bitwise-identical "
      f"({chaos.restarts} restart(s), {chaos.checkpoints} checkpoint(s))")
EOF

echo "== elastic resize smoke check (grow 2->4, shrink 4->2, bitwise) =="
python - <<'EOF'
"""Assert the elastic runtime's headline invariant on a live run.

Runs one Figure-1 session at a fixed pool size and once under a resize
plan that grows 2 -> 4 then shrinks 4 -> 2 at epoch boundaries: the
resizes must actually apply, and the rescaled session must be
bitwise-identical to the fixed-size one (results and folded domain
counters; transport counters scale with the pool by design).
"""
import time

from repro.elastic import ResizePlan, ResizeRequest
from repro.faults import (
    fold_obs_counters,
    run_supervised_session,
    session_results_equal,
)
from repro.marketminer.session import build_figure1_workflow
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

SECONDS = 23_400 // 16


def build():
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=33,
    )
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=4, d=0.002)
    return build_figure1_workflow(
        market,
        TimeGrid(30, trading_seconds=SECONDS),
        [(0, 1), (2, 3)],
        [params],
    )


t0 = time.perf_counter()
options = {"default_timeout": 2.0}
fixed = run_supervised_session(
    build, size=2, checkpoint_every=20,
    obs_enabled=True, backend_options=options,
)
elastic = run_supervised_session(
    build, size=2, checkpoint_every=20,
    resize=ResizePlan((ResizeRequest(1, 4), ResizeRequest(2, 2))),
    obs_enabled=True, backend_options=options,
)
elapsed = time.perf_counter() - t0
assert elastic.pool_sizes == (2, 4, 2), (
    f"resize plan never applied: pool sizes {elastic.pool_sizes}"
)
assert session_results_equal(fixed.results, elastic.results), (
    "rescaled session diverged from the fixed-size run"
)
exclude = ("mpi.",)
assert fold_obs_counters(
    fixed.obs_reports, exclude_prefixes=exclude
) == fold_obs_counters(elastic.obs_reports, exclude_prefixes=exclude), (
    "rescaled session's folded domain counters diverged"
)
assert elapsed < 10.0, (
    f"elastic smoke took {elapsed:.1f}s >= 10s budget: the stage must "
    f"stay cheap enough to run on every check"
)
print(f"ok: session resized 2->4->2 bitwise-identical to fixed size "
      f"({len(elastic.resizes)} resize(s), {elapsed:.1f}s)")
EOF

echo "== work-stealing makespan smoke check =="
python -m benchmarks.bench_elastic --smoke

echo "== detached-faults overhead smoke check =="
python - <<'EOF'
"""Assert the detached fault-injection seam stays (near-)free.

Same min-of-N discipline as the obs and tracer checks: a plain ping-pong
loop must run within 10% of one with a fault injector attached (empty
plan, so the injector stamps/op-counts every message but injects
nothing).  The detached path pays exactly one ``faults is not None``
test per send/recv.
"""
import time

from repro.faults import FaultInjector, FaultPlan
from repro.mpi.launcher import run_spmd

ROUNDS = 4000
N_RUNS = 3


def pingpong(comm):
    peer = 1 - comm.rank
    for i in range(ROUNDS):
        if comm.rank == 0:
            comm.send(i, peer, tag=1)
            comm.recv(source=peer, tag=2)
        else:
            comm.recv(source=peer, tag=1)
            comm.send(i, peer, tag=2)
    return None


def injected(comm):
    comm.attach_faults(FaultInjector(FaultPlan(name="empty"), comm.rank))
    try:
        pingpong(comm)
    finally:
        comm.attach_faults(None)


def best_of(fn):
    best = float("inf")
    for _ in range(N_RUNS):
        t0 = time.perf_counter()
        run_spmd(fn, size=2, default_timeout=30.0)
        best = min(best, time.perf_counter() - t0)
    return best


detached = best_of(pingpong)
attached = best_of(injected)
ratio = detached / attached
print(f"detached {detached:.3f}s  attached {attached:.3f}s  "
      f"detached/attached {ratio:.2f}")
assert ratio < 1.10, (
    f"detached faults should be at least as fast as attached "
    f"(ratio {ratio:.2f} >= 1.10): the no-op fast path regressed"
)
print("ok: detached fault injection pays no measurable overhead")
EOF

echo "all checks passed"
