#!/usr/bin/env bash
# Repository health check: compile, test, and verify that disabled
# observability stays (near-)free on the hot paths.
#
# Usage: scripts/check.sh          (from the repository root)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== compileall =="
python -m compileall -q src

echo "== pytest =="
python -m pytest -x -q

echo "== observability overhead smoke check =="
python - <<'EOF'
"""Assert the disabled-obs pipeline is within 10% of pre-obs cost.

Runs the same Figure-1 session with observability off and on, taking the
min of N runs each (min is robust to scheduling noise).  The disabled
path must not pay for the instrumentation: we require
min(disabled) < 1.10 * min(enabled) -- i.e. disabling can't be slower
than enabling by more than the tolerance, which bounds the no-op
overhead since the enabled run does strictly more work.
"""
import time

from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

SECONDS = 3000
N_RUNS = 3


def workflow():
    market = SyntheticMarket(
        default_universe(4),
        SyntheticMarketConfig(trading_seconds=SECONDS, quote_rate=0.9),
        seed=7,
    )
    params = StrategyParams(m=20, w=10, y=4, rt=10, hp=8, st=5, d=0.001)
    return build_figure1_workflow(
        market,
        TimeGrid(30, trading_seconds=SECONDS),
        list(market.universe.pairs()),
        [params],
    )


def best_of(obs_enabled):
    best = float("inf")
    for _ in range(N_RUNS):
        t0 = time.perf_counter()
        run_figure1_session(workflow(), size=2, obs_enabled=obs_enabled)
        best = min(best, time.perf_counter() - t0)
    return best


disabled = best_of(False)
enabled = best_of(True)
ratio = disabled / enabled
print(f"disabled {disabled:.3f}s  enabled {enabled:.3f}s  "
      f"disabled/enabled {ratio:.2f}")
assert ratio < 1.10, (
    f"disabled observability should be at least as fast as enabled "
    f"(ratio {ratio:.2f} >= 1.10): the no-op fast path regressed"
)
print("ok: disabled observability pays no measurable overhead")
EOF

echo "all checks passed"
