"""The complete reproduction in one command.

Runs the full study (every pair x the 42-set Table-I grid x several
synthetic days) and prints the one-stop report: Tables III–V, Figure-2
box plots, significance tests, selection rankings and walk-forward
validation.  At the top of the file are the two knobs that take this to
the paper's full scale.

Run:  python examples/full_reproduction.py
"""

import time

from repro.backtest.report import StudyReportOptions, study_report
from repro.backtest.sweep import SweepConfig, run_sweep
from repro.strategy.params import StrategyParams

N_SYMBOLS = 8   # paper: 61
N_DAYS = 3      # paper: 20


def main() -> None:
    config = SweepConfig(
        n_symbols=N_SYMBOLS,
        n_days=N_DAYS,
        trading_seconds=23_400 // 2,
        seed=2008,
        base_params=StrategyParams(
            m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001
        ),
        ranks=2,
    )
    print(
        f"Sweeping {config.build_universe().n_pairs()} pairs x "
        f"{len(config.build_grid())} parameter sets x {N_DAYS} days..."
    )
    t0 = time.time()
    store, grid = run_sweep(config)
    print(f"done in {time.time() - t0:.1f}s\n")

    print(
        study_report(
            store,
            grid,
            StudyReportOptions(
                symbols=config.build_universe().symbols, seed=2008
            ),
        )
    )


if __name__ == "__main__":
    main()
