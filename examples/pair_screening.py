"""Candidate-pair discovery: the step before any backtest.

"The usual routine for a fundamental pair trader is to first identify a
number of candidate pairs" (paper §II); MarketMiner's lineage includes
real-time correlation *clustering* of high-frequency data.  This example
runs the whole screening funnel on a synthetic day:

1. compute the market-wide robust correlation matrix over the day,
2. cluster the universe (threshold components + hierarchical view),
3. screen candidate pairs demanding statistical certainty (Fisher-z
   lower bound above threshold),
4. backtest the screened pairs vs the same number of unscreened ones.

Run:  python examples/pair_screening.py
"""

import numpy as np

from repro.backtest.data import BarProvider
from repro.backtest.runner import SequentialBacktester
from repro.bars.returns import log_returns
from repro.corr.clustering import (
    correlation_clusters,
    hierarchical_clusters,
    screen_candidate_pairs,
)
from repro.corr.measures import corr_matrix
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


def main() -> None:
    universe = default_universe(12)
    config = SyntheticMarketConfig(trading_seconds=23_400 // 2)
    market = SyntheticMarket(universe, config, seed=31)
    grid = TimeGrid(30, trading_seconds=config.trading_seconds)
    provider = BarProvider(market, grid)

    returns = provider.returns(0)
    matrix = corr_matrix(returns, "maronna")
    print(f"Universe of {len(universe)}: {', '.join(universe.symbols)}")

    print("\nCorrelation clusters (threshold 0.55):")
    for cluster in correlation_clusters(matrix, 0.55):
        names = ", ".join(universe.symbols[i] for i in sorted(cluster))
        print(f"  [{names}]")

    print("\nHierarchical clusters (k=4, correlation distance):")
    for cluster in hierarchical_clusters(matrix, 4):
        names = ", ".join(universe.symbols[i] for i in sorted(cluster))
        print(f"  [{names}]")

    candidates = screen_candidate_pairs(
        matrix, n_obs=returns.shape[0], threshold=0.5, max_pairs=8
    )
    print(f"\nScreened candidates (Fisher-z lower bound >= 0.5):")
    for c in candidates:
        i, j = c.pair
        same = "same-sector" if universe.sectors[i] == universe.sectors[j] else ""
        print(
            f"  {universe.symbols[i]}/{universe.symbols[j]:<5} "
            f"rho={c.correlation:.3f} (lb {c.lower_bound:.3f}) {same}"
        )

    # Does screening pay? Backtest screened vs arbitrary pairs, day 1
    # (out-of-sample relative to the day-0 screen).
    params = StrategyParams(
        ctype="maronna", m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001
    )
    screened = [c.pair for c in candidates]
    all_pairs = list(universe.pairs())
    unscreened = [p for p in all_pairs if p not in set(screened)][: len(screened)]
    bt = SequentialBacktester(provider, share_correlation=True)

    def mean_return(pairs):
        store = bt.run(pairs, [params], [1])
        return float(np.mean([store.total_return(p, 0) for p in pairs])), store.n_trades

    ret_screened, n_screened = mean_return(screened)
    ret_other, n_other = mean_return(unscreened)
    print(f"\nOut-of-sample (day 1) backtest:")
    print(f"  screened pairs   mean return {ret_screened:+.4%} ({n_screened} trades)")
    print(f"  unscreened pairs mean return {ret_other:+.4%} ({n_other} trades)")


if __name__ == "__main__":
    main()
