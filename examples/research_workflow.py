"""The paper's "further studies", end to end.

Section VI lists what comes after the preliminary results: rigorous
significance testing of the treatment differences, identification of
optimal parameter sets per correlation measure, finding which pairs
trade well, and accounting for implementation shortfalls.  This script
runs all four studies on one sweep.

Run:  python examples/research_workflow.py
"""

import time

import numpy as np

from repro.backtest.selection import (
    format_selection_report,
    rank_pairs,
    rank_parameter_sets,
)
from repro.backtest.sweep import SweepConfig, run_sweep
from repro.corr.measures import CorrelationType
from repro.metrics.significance import (
    format_significance_table,
    treatment_significance,
)
from repro.strategy.costs import ExecutionModel
from repro.strategy.params import StrategyParams

BASE = StrategyParams(m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001)


def main() -> None:
    config = SweepConfig(
        n_symbols=8,
        n_days=3,
        trading_seconds=23_400 // 2,
        seed=2008,
        base_params=BASE,
        ranks=2,
    )
    symbols = config.build_universe().symbols
    print(f"Sweeping {config.build_universe().n_pairs()} pairs x 42 sets x "
          f"{config.n_days} days...")
    t0 = time.time()
    store, grid = run_sweep(config)
    print(f"done in {time.time() - t0:.1f}s ({store.n_trades} trades)\n")

    # Study 1: are the treatment differences real?
    print("== Significance of treatment differences ==")
    comparisons = []
    for measure in ("returns", "drawdown", "winloss"):
        comparisons.extend(
            treatment_significance(store, grid, measure, seed=2008)
        )
    print(format_significance_table(comparisons))

    # Study 2 & 3: optimal parameters, best pairs.
    print("\n== Selection ==")
    print(
        format_selection_report(
            rank_parameter_sets(store, grid, "returns"),
            rank_pairs(store, grid, "returns"),
            "returns",
            top=3,
            symbols=symbols,
        )
    )
    print("\nBest parameter set per correlation measure:")
    for ctype in CorrelationType:
        best = rank_parameter_sets(store, grid, "returns", ctype)[0]
        print(f"  {ctype.value:<10} k={best.param_index:2d} "
              f"score={best.score:+.5f}")

    # Study 4: implementation shortfalls.
    print("\n== Implementation shortfall ==")
    frictionless = float(
        np.mean([store.total_return(p, 0) for p in store.pairs])
    )
    print(f"  {'friction':<28} {'mean cum return (k=0)':>22}")
    print(f"  {'none (paper convention)':<28} {frictionless:>+22.5f}")
    for label, model in (
        ("0.5 bp slippage/leg", ExecutionModel(slippage_frac=0.5e-4)),
        ("1 bp + 0.5c commission", ExecutionModel(
            slippage_frac=1e-4, commission_per_share=0.005)),
        ("above + 80% fill rate", ExecutionModel(
            slippage_frac=1e-4, commission_per_share=0.005,
            fill_probability=0.8, seed=1)),
    ):
        cfg = SweepConfig(
            n_symbols=config.n_symbols,
            n_days=config.n_days,
            trading_seconds=config.trading_seconds,
            seed=config.seed,
            base_params=BASE,
            n_levels=1,
            ranks=2,
            execution=model,
        )
        frictional_store, _ = run_sweep(cfg)
        net = float(np.mean(
            [frictional_store.total_return(p, 0) for p in frictional_store.pairs]
        ))
        print(f"  {label:<28} {net:>+22.5f}")


if __name__ == "__main__":
    main()
