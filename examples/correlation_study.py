"""The paper's evaluation, in one script: which correlation measure wins?

Reproduces Section V: a brute-force backtest over every pair of the
universe, the 42-set parameter grid (3 correlation treatments x 14 factor
levels), several trading days — then the Tables III–V treatment summaries
and the Figure-2 box-plot statistics.

Scale knobs are at the top; the paper's full scale is
``N_SYMBOLS = 61, N_DAYS = 20, trading_seconds = 23400``.

Run:  python examples/correlation_study.py
"""

import time

from repro.backtest.sweep import SweepConfig, run_sweep
from repro.corr.measures import CorrelationType
from repro.metrics.summary import (
    boxplot_by_treatment,
    format_treatment_table,
    treatment_summaries,
)
from repro.strategy.params import StrategyParams

N_SYMBOLS = 8          # paper: 61  -> 1830 pairs
N_DAYS = 3             # paper: 20  (March 2008)
TRADING_SECONDS = 23_400 // 2  # paper: 23400
N_LEVELS = None        # all 14 factor levels -> 42 parameter sets


def main() -> None:
    config = SweepConfig(
        n_symbols=N_SYMBOLS,
        n_days=N_DAYS,
        trading_seconds=TRADING_SECONDS,
        n_levels=N_LEVELS,
        seed=2008,
        base_params=StrategyParams(
            m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001
        ),
        ranks=2,
    )
    n_pairs = config.build_universe().n_pairs()
    grid = config.build_grid()
    print(
        f"Backtesting {n_pairs} pairs x {len(grid)} parameter sets x "
        f"{N_DAYS} days ({n_pairs * len(grid) * N_DAYS} cells)..."
    )
    t0 = time.time()
    store, grid = run_sweep(config)
    print(f"done in {time.time() - t0:.1f}s — {store.n_trades} trades\n")

    for measure, title in (
        ("returns", "Table III: average cumulative returns (gross)"),
        ("drawdown", "Table IV: average maximum daily drawdown"),
        ("winloss", "Table V: average win-loss ratio"),
    ):
        print(format_treatment_table(
            treatment_summaries(store, grid, measure), title
        ))
        print()

    print("Figure 2: box-plot statistics (median [q1, q3], whiskers, outliers)")
    for measure in ("returns", "drawdown", "winloss"):
        boxes = boxplot_by_treatment(store, grid, measure)
        print(f"  {measure}:")
        for ctype in CorrelationType:
            b = boxes[ctype]
            print(
                f"    {ctype.value:<9} {b.median:.4f} "
                f"[{b.q1:.4f}, {b.q3:.4f}]  "
                f"whiskers [{b.whisker_low:.4f}, {b.whisker_high:.4f}]  "
                f"{len(b.outliers)} outliers"
            )


if __name__ == "__main__":
    main()
