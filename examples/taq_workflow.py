"""TAQ data engineering: files, databases, cleaning and robust correlation.

The unglamorous half of the paper: "Raw data, whether from a database or a
live stream, needs to be cleaned before being analyzed".  This example

1. synthesises a dirty quote day (decimal slips, test quotes, far-out
   limit orders) and writes it as a Table-II-style CSV,
2. reads it back and stores it in the quote database,
3. cleans it with the TCP-like filter and reports the damage,
4. shows what the outliers do to Pearson vs Maronna correlation on the
   *uncleaned* stream — the paper's case for the robust measure.

Run:  python examples/taq_workflow.py
"""

import tempfile
from pathlib import Path

from repro.bars.accumulator import accumulate_bam
from repro.bars.returns import log_returns
from repro.clean.filters import clean_quotes
from repro.corr.measures import pairwise_corr
from repro.marketminer.components.collectors import QuoteDatabase
from repro.taq.io import format_table2, read_taq_csv, write_taq_csv
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


def main() -> None:
    universe = default_universe(6)
    config = SyntheticMarketConfig(
        trading_seconds=23_400 // 4, quote_rate=0.9, outlier_prob=3e-3
    )
    market = SyntheticMarket(universe, config, seed=99)
    grid = TimeGrid(30, trading_seconds=config.trading_seconds)

    dirty = market.quotes(0, with_outliers=True)
    print("Raw synthetic TAQ data (Table II format):")
    print(format_table2(dirty, universe, limit=8))

    # File round trip: the "Custom TAQ Files" adapter format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "20080303.csv"
        write_taq_csv(path, dirty, universe)
        print(f"\nWrote {dirty.size} quotes to {path.name} "
              f"({path.stat().st_size / 1e6:.1f} MB)")
        from_file = read_taq_csv(path, universe)

    # Database round trip: the "MySQL DB" adapter stand-in.
    db = QuoteDatabase()
    db.store(0, from_file)
    quotes = db.load(0)
    print(f"Stored and reloaded day 0 from the quote database "
          f"({quotes.size} rows)")

    cleaned, stats = clean_quotes(quotes, len(universe))
    print(
        f"\nTCP-like filter: kept {stats.accepted}/{stats.total} "
        f"({stats.acceptance_rate:.2%}), rejected {stats.rejected_outlier} "
        f"outliers and {stats.rejected_crossed} crossed quotes"
    )

    from repro.taq.quality import quality_report

    print("\nIngest quality report:")
    print(quality_report(quotes, universe, config.trading_seconds).format())

    # The robust-correlation case: measure XOM/CVX on the DIRTY stream.
    dirty_bars = accumulate_bam(quotes, grid, len(universe))
    clean_bars = accumulate_bam(cleaned, grid, len(universe))
    i, j = universe.index_of("XOM"), universe.index_of("CVX")
    rows = {
        "dirty bars": log_returns(dirty_bars),
        "clean bars": log_returns(clean_bars),
    }
    print(f"\nXOM/CVX correlation (full day window):")
    print(f"  {'input':<12} {'pearson':>9} {'maronna':>9} {'combined':>9}")
    for name, r in rows.items():
        values = [
            pairwise_corr(r[:, i], r[:, j], ctype)
            for ctype in ("pearson", "maronna", "combined")
        ]
        print(f"  {name:<12} " + " ".join(f"{v:9.4f}" for v in values))
    print(
        "\nOn dirty data Pearson is badly distorted (here, coincident "
        "corruption in both symbols masquerades as co-movement and inflates "
        "it) while Maronna barely moves — the paper's argument for "
        "computing robust correlation market-wide."
    )


if __name__ == "__main__":
    main()
