"""Quickstart: backtest one pair over one synthetic trading day.

Walks the paper's pipeline end to end, in miniature:

1. synthesise a day of quotes for a small universe,
2. clean them, accumulate BAM bars, compute log-returns,
3. compute the pair's sliding-window correlation,
4. run the canonical pair trading strategy (paper §III),
5. print the trades and the day's performance metrics.

Run:  python examples/quickstart.py
"""

from repro.backtest.data import BarProvider
from repro.corr.measures import corr_series
from repro.metrics.drawdown import max_drawdown
from repro.metrics.returns import cumulative_return
from repro.metrics.winloss import win_loss_ratio
from repro.strategy.engine import align_corr_series, run_pair_day
from repro.strategy.params import StrategyParams
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid


def main() -> None:
    # A 10-stock universe: interleaved sectors, so same-sector (and hence
    # genuinely correlated) pairs exist. XOM/CVX is the paper's classic.
    universe = default_universe(10)
    config = SyntheticMarketConfig(trading_seconds=23_400 // 2)
    market = SyntheticMarket(universe, config, seed=42)
    grid = TimeGrid(delta_s=30, trading_seconds=config.trading_seconds)

    provider = BarProvider(market, grid, clean=True)
    prices = provider.prices(day=0)
    returns = provider.returns(day=0)

    i, j = universe.index_of("XOM"), universe.index_of("CVX")
    print(f"Universe: {', '.join(universe.symbols)}")
    print(f"Pair: {universe.symbols[i]}/{universe.symbols[j]} "
          f"(sector: {universe.sectors[i]}), {grid.smax} bars of {grid.delta_s}s")

    # Strategy parameters, scaled to the half-day session (in Δs units).
    params = StrategyParams(
        ctype="maronna", m=60, w=30, y=8, rt=30, hp=20, st=10, d=0.001
    )
    series = corr_series(returns[:, i], returns[:, j], params.m, params.ctype)
    corr = align_corr_series(series, grid.smax, params.m)
    print(f"Correlation over the day: min={series.min():.3f} "
          f"max={series.max():.3f}")

    trades = run_pair_day(prices[:, [i, j]], corr, params)
    print(f"\n{len(trades)} trades:")
    for t in trades:
        legs = (universe.symbols[i], universe.symbols[j])
        print(
            f"  s={t.entry_s:3d} -> {t.exit_s:3d}  long {legs[t.long_leg]:<5} "
            f"{t.n_long}:{t.n_short}  return {t.ret:+.4%}  ({t.reason.value})"
        )

    rets = [t.ret for t in trades]
    print(f"\nDay summary: cumulative return {cumulative_return(rets):+.4%}, "
          f"max drawdown {max_drawdown(rets):.4%}, "
          f"win/loss {win_loss_ratio(rets):.2f}")


if __name__ == "__main__":
    main()
