"""Run the Figure-1 MarketMiner pipeline as a live trading session.

Streams one synthetic trading day through the full component DAG —
live collector → TCP-like cleaning → OHLC bar accumulator → technical
analysis → online correlation engine → pair trading strategy → order
sink with risk limits and basket aggregation — across 3 SPMD ranks of
the MPI substrate.

Run:  python examples/live_pipeline.py
"""

from repro.marketminer.scheduler import WorkflowRunner
from repro.marketminer.session import build_figure1_workflow, run_figure1_session
from repro.strategy.params import StrategyParams
from repro.strategy.portfolio import RiskLimits
from repro.taq.synthetic import SyntheticMarket, SyntheticMarketConfig
from repro.taq.universe import default_universe
from repro.util.timeutil import TimeGrid

RANKS = 3


def main() -> None:
    config = SyntheticMarketConfig(
        trading_seconds=23_400 // 4, quote_rate=0.9, outlier_prob=1e-3
    )
    market = SyntheticMarket(default_universe(8), config, seed=7)
    grid = TimeGrid(30, trading_seconds=config.trading_seconds)
    params = StrategyParams(
        ctype="combined", m=50, w=25, y=8, rt=25, hp=15, st=10, d=0.001
    )
    pairs = list(market.universe.pairs())

    workflow = build_figure1_workflow(
        market,
        grid,
        pairs,
        [params],
        day=0,
        limits=RiskLimits(max_gross_notional=5_000.0, max_open_pairs=10),
        n_corr_engines=2,  # the figure's Parallel Correlation Engine
    )
    print(workflow.describe())

    rank_map = WorkflowRunner(workflow).rank_map(RANKS)
    print(f"\nPlacement over {RANKS} ranks:")
    for rank in range(RANKS):
        names = ", ".join(map(str, rank_map.components_of(rank)))
        print(f"  rank {rank}: {names}")

    print("\nStreaming the session...")
    results = run_figure1_session(workflow, size=RANKS, collect_stats=True)
    for rank, stats in results["_runtime"].items():
        print(
            f"  rank {rank}: {stats['messages_local']} local / "
            f"{stats['messages_remote']} cross-rank messages"
        )

    cleaning = results["cleaning"]
    print(
        f"cleaning: {cleaning['total']} quotes, "
        f"{cleaning['rejected_outlier']} outliers and "
        f"{cleaning['rejected_crossed']} crossed quotes dropped"
    )
    corr_emitted = sum(
        res["matrices_emitted"]
        for name, res in results.items()
        if name.startswith("correlation")
    )
    print(
        f"bars: {results['bar_accumulator']['bars_emitted']}, "
        f"correlation blocks emitted: {corr_emitted}"
    )

    sink = results["order_sink"]
    trades = results["pair_trading"]["trades"]
    n_trades = sum(len(v) for v in trades.values())
    print(
        f"\n{n_trades} round trips, {sink['accepted_orders']} orders accepted, "
        f"{sink['entries_vetoed']} entries vetoed by risk limits, "
        f"{sink['open_pairs_at_close']} pairs open at the close"
    )

    print("\nBusiest baskets (interval -> net shares per symbol):")
    busiest = sorted(
        sink["baskets"].items(), key=lambda kv: -len(kv[1])
    )[:5]
    symbols = market.universe.symbols
    for s, basket in sorted(busiest):
        legs = ", ".join(
            f"{symbols[sym]}:{shares:+d}" for sym, shares in sorted(basket.items())
        )
        print(f"  s={s:3d}  {legs}")

    print("\nPer-pair performance:")
    for (pair, _k), pair_trades in sorted(trades.items()):
        if not pair_trades:
            continue
        total = 1.0
        for t in pair_trades:
            total *= 1 + t.ret
        name = f"{symbols[pair[0]]}/{symbols[pair[1]]}"
        print(f"  {name:<11} {len(pair_trades):2d} trades, "
              f"day return {total - 1:+.4%}")

    # List-based execution of the busiest basket (paper §IV: "a
    # sophisticated list-based algorithm to optimize the actual
    # execution of the trades").
    from repro.backtest.data import BarProvider
    from repro.strategy.execution_algo import (
        ListExecutionScheduler,
        simulate_fills,
    )

    busiest_s, basket = max(sink["baskets"].items(), key=lambda kv: len(kv[1]))
    prices = BarProvider(market, grid).prices(0)
    scheduler = ListExecutionScheduler(
        horizon=5, max_participation=0.2, interval_volume=500
    )
    plan = scheduler.plan(basket, decision_s=busiest_s)
    report = simulate_fills(plan, prices)
    print(f"\nList execution of the s={busiest_s} basket "
          f"({len(plan.children)} child orders over 5 intervals):")
    for e in report.executions:
        print(
            f"  {symbols[e.symbol]:<5} {e.shares:+4d} shares, avg fill "
            f"{e.avg_fill_price:.2f} vs decision {e.decision_price:.2f} "
            f"(shortfall {e.shortfall_frac:+.2%})"
        )
    print(f"  total implementation shortfall: ${report.total_cost:+.2f}")


if __name__ == "__main__":
    main()
